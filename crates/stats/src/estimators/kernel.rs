//! Streaming estimator kernels — prefix-state reuse for the §3.3.2 sweep.
//!
//! The ascending-fraction sweep of profile generation evaluates every
//! estimator on a ladder of *nested prefixes* of one sampling permutation:
//! the sample at fraction `f` is a prefix of the sample at `f′ > f` (that
//! is exactly what makes output reuse sound). The batch estimators ignore
//! this structure — `avg_estimate` re-sums the whole prefix and
//! `quantile_estimate` re-sorts it at every fraction, so a `k`-candidate
//! sweep over a terminal sample of size `n` costs `O(k·n log n)`.
//!
//! The kernels here carry the estimator state *across* the sweep instead:
//!
//! * [`MeanKernel`] — a sequential [`RunningStats`] accumulation (count,
//!   Welford mean/M2, min/max). Serves AVG/SUM/COUNT bounds per fraction
//!   in `O(1)` after `O(Δn)` ingestion.
//! * [`VarKernel`] — two running summaries (raw outputs and their
//!   squares), matching `var_estimate`'s interval-arithmetic construction.
//! * [`OrderKernel`] — a sorted buffer of the prefix. Single elements
//!   insert by binary search; ladder steps bulk-ingest through
//!   [`push_slice`](OrderKernel::push_slice), which sorts the `Δn` batch
//!   and merges it in one backward pass — `O(Δn log Δn + n)` per step
//!   instead of binary insertion's `O(Δn·n)` memmove — with `F̂_k̂` found
//!   by `partition_point` range search.
//!
//! Every kernel also exposes a batched `push_slice` that is **bit-identical
//! to element-wise `push`** for any chunking of the same stream: the
//! reduction order is pinned to the element index (see DESIGN.md "Pinned
//! reduction order"), so the §3.3.2 sweep can ingest each fraction step as
//! one slice without perturbing a single output bit.
//!
//! **Determinism contract.** Every kernel feeds the *same state* through
//! the *same formula code* as the batch estimator it mirrors:
//! `RunningStats` accumulation is sequential in sample order, so after `n`
//! pushes the summary is bit-identical to `RunningStats::from_slice` over
//! the same prefix (float addition is performed in the identical order),
//! and the `*_from_stats` / `*_from_sorted` entry points are the very
//! functions the batch estimators delegate to. The batch estimators remain
//! the reference implementations and the API for one-shot callers.

use crate::describe::RunningStats;
use crate::estimators::avg::avg_estimate_from_stats;
use crate::estimators::quantile::{
    quantile_from_sorted, stein_from_sorted, Extreme, QuantileEstimate,
};
use crate::estimators::variance::var_estimate_from_stats;
use crate::estimators::MeanEstimate;
use crate::{Result, StatsError};

/// Streaming kernel for the mean-style estimators (AVG, and the SUM/COUNT
/// reductions that scale it).
///
/// Push outputs in sample order; each estimate call is `O(1)` and
/// bit-identical to running the batch estimator on the pushed prefix.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanKernel {
    stats: RunningStats,
}

impl MeanKernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        MeanKernel {
            stats: RunningStats::new(),
        }
    }

    /// Ingests one output (must arrive in sample order for bit-identity
    /// with the batch path).
    pub fn push(&mut self, v: f64) {
        self.stats.push(v);
    }

    /// Ingests a batch of outputs in sample order — bit-identical to
    /// calling [`push`](Self::push) per element, via the pinned-order
    /// chunked [`RunningStats::push_slice`] path (one call per
    /// fraction-ladder step instead of one per frame).
    pub fn push_slice(&mut self, values: &[f64]) {
        self.stats.push_slice(values);
    }

    /// Outputs ingested so far.
    pub fn n(&self) -> usize {
        self.stats.n()
    }

    /// The running summary (exposed for composition and tests).
    pub fn stats(&self) -> &RunningStats {
        &self.stats
    }

    /// Algorithm 1 on the current prefix — equals
    /// [`avg_estimate`](crate::avg_estimate) on the same values.
    pub fn avg(&self, population: usize, delta: f64) -> Result<MeanEstimate> {
        avg_estimate_from_stats(&self.stats, population, delta)
    }

    /// SUM on the current prefix — the AVG estimate scaled by `N`, exactly
    /// as [`sum_estimate`](crate::sum_estimate) computes it.
    pub fn sum(&self, population: usize, delta: f64) -> Result<MeanEstimate> {
        Ok(self.avg(population, delta)?.scaled(population as f64))
    }

    /// COUNT on the current prefix. The kernel owner applies the indicator
    /// transform at push time (so no per-candidate indicator vector is
    /// materialized); this validates the invariant the batch
    /// [`count_estimate`](crate::count_estimate) enforces and then reduces
    /// to SUM just as §3.2.3 prescribes.
    pub fn count(&self, population: usize, delta: f64) -> Result<MeanEstimate> {
        if !self.indicator_only() {
            return Err(StatsError::NonFinite(
                "COUNT indicator samples (must be 0 or 1)",
            ));
        }
        self.sum(population, delta)
    }

    /// Whether every pushed value was a 0/1 indicator. Min/max tracking
    /// makes this an `O(1)` check (an empty kernel vacuously qualifies).
    fn indicator_only(&self) -> bool {
        if self.stats.n() == 0 {
            return true;
        }
        let ok = |v: f64| v == 0.0 || v == 1.0;
        ok(self.stats.min()) && ok(self.stats.max())
    }
}

/// Streaming kernel for VAR: running summaries of the outputs and their
/// squares, combined by the same interval arithmetic as
/// [`var_estimate`](crate::var_estimate).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VarKernel {
    raw: RunningStats,
    squares: RunningStats,
}

impl VarKernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        VarKernel {
            raw: RunningStats::new(),
            squares: RunningStats::new(),
        }
    }

    /// Ingests one output (sample order required, as for [`MeanKernel`]).
    pub fn push(&mut self, v: f64) {
        self.raw.push(v);
        self.squares.push(v * v);
    }

    /// Ingests a batch of outputs in sample order — bit-identical to
    /// per-element [`push`](Self::push). The two running summaries are
    /// independent accumulators, so feeding the raw slice and then the
    /// squared slice leaves exactly the per-element interleaved state;
    /// squares are computed in fixed 8-wide chunks (`v·v` is elementwise,
    /// so chunking cannot move a bit) and streamed through the same
    /// pinned-order slice path.
    pub fn push_slice(&mut self, values: &[f64]) {
        self.raw.push_slice(values);
        let mut sq = [0.0f64; 8];
        let mut chunks = values.chunks_exact(8);
        for chunk in &mut chunks {
            for (s, &v) in sq.iter_mut().zip(chunk) {
                *s = v * v;
            }
            self.squares.push_slice(&sq);
        }
        let rem = chunks.remainder();
        for (s, &v) in sq.iter_mut().zip(rem) {
            *s = v * v;
        }
        self.squares.push_slice(&sq[..rem.len()]);
    }

    /// Outputs ingested so far.
    pub fn n(&self) -> usize {
        self.raw.n()
    }

    /// VAR estimate on the current prefix — equals
    /// [`var_estimate`](crate::var_estimate) on the same values.
    pub fn estimate(&self, population: usize, delta: f64) -> Result<MeanEstimate> {
        var_estimate_from_stats(&self.raw, &self.squares, population, delta)
    }
}

/// Streaming kernel for the quantile (MAX/MIN/QUANTILE) estimators: a
/// sorted multiset of the prefix in a reused buffer, maintained by binary
/// insertion per element or sort-then-merge per batch.
///
/// Each push costs `O(log n)` comparisons plus one `memmove` (a
/// [`push_slice`](Self::push_slice) batch costs `O(Δn log Δn + n)`); each
/// estimate costs `O(log n)` (order-statistic index plus `partition_point`
/// frequency search) instead of the batch path's `O(n log n)` re-sort.
#[derive(Debug, Clone, Default)]
pub struct OrderKernel {
    sorted: Vec<f64>,
    non_finite: usize,
    /// Reused batch buffer for [`push_slice`](Self::push_slice); holds no
    /// logical state between calls and is excluded from equality.
    scratch: Vec<f64>,
}

/// Equality is over the logical state (the sorted multiset and the
/// non-finite tally); the transient `scratch` buffer is ignored.
impl PartialEq for OrderKernel {
    fn eq(&self, other: &Self) -> bool {
        self.sorted == other.sorted && self.non_finite == other.non_finite
    }
}

impl OrderKernel {
    /// Creates an empty kernel.
    pub fn new() -> Self {
        OrderKernel::default()
    }

    /// Creates an empty kernel with room for `capacity` outputs, so a
    /// sweep to a known terminal sample size never reallocates — the
    /// batch scratch is pre-sized too, making a whole warm-cache sweep
    /// through [`push_slice`](Self::push_slice) allocation-free.
    pub fn with_capacity(capacity: usize) -> Self {
        OrderKernel {
            sorted: Vec::with_capacity(capacity),
            non_finite: 0,
            scratch: Vec::with_capacity(capacity),
        }
    }

    /// Ingests one output. Non-finite values are tallied (not inserted) so
    /// estimates fail with the same error the batch path reports.
    pub fn push(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite += 1;
            return;
        }
        let at = self.sorted.partition_point(|&x| x < v);
        self.sorted.insert(at, v);
    }

    /// Bulk ingest for one fraction-ladder step: sorts the incoming batch
    /// and merges it with the maintained prefix in a single backward pass.
    ///
    /// Per-element binary insertion pays an `O(n)` memmove per push —
    /// `O(Δn·n)` per ladder step, quadratic over a sweep. Sort-then-merge
    /// pays `O(Δn log Δn + n)` and touches each resident element once.
    ///
    /// The resulting buffer is byte-identical to element-wise
    /// [`push`](Self::push): a sorted multiset is fully determined by its
    /// elements whenever values that compare equal are bit-identical
    /// (true for model outputs — counts — and any NaN-free ladder without
    /// a mixed-sign zero; NaNs are tallied, never inserted, on both
    /// paths).
    pub fn push_slice(&mut self, values: &[f64]) {
        match values {
            [] => return,
            [v] => return self.push(*v),
            _ => {}
        }
        // The batch lands in the reused scratch buffer: no allocation once
        // scratch capacity has warmed to the largest rung. The sort is
        // unstable (in-place, allocation-free); a sorted multiset is fully
        // determined by its elements under the equal-means-bit-identical
        // precondition above, so stability cannot move a bit.
        self.scratch.clear();
        self.scratch
            .extend(values.iter().copied().filter(|v| v.is_finite()));
        self.non_finite += values.len() - self.scratch.len();
        if self.scratch.is_empty() {
            return;
        }
        self.scratch
            .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite batch"));
        let old_len = self.sorted.len();
        // Fast path: the batch lands entirely past the resident prefix
        // (also covers an empty prefix).
        if old_len == 0 || self.scratch[0] >= self.sorted[old_len - 1] {
            self.sorted.extend_from_slice(&self.scratch);
            return;
        }
        // Backward in-place merge of the resident run and the batch.
        self.sorted.resize(old_len + self.scratch.len(), 0.0);
        let mut i = old_len;
        let mut j = self.scratch.len();
        let mut k = self.sorted.len();
        while j > 0 {
            k -= 1;
            if i > 0 && self.sorted[i - 1] > self.scratch[j - 1] {
                i -= 1;
                self.sorted[k] = self.sorted[i];
            } else {
                j -= 1;
                self.sorted[k] = self.scratch[j];
            }
        }
    }

    /// Outputs ingested so far (including any non-finite ones).
    pub fn n(&self) -> usize {
        self.sorted.len() + self.non_finite
    }

    /// The sorted prefix (exposed for repair paths and tests).
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Algorithm 2 on the current prefix — equals
    /// [`quantile_estimate`](crate::quantile_estimate) on the same values.
    pub fn quantile(
        &self,
        population: usize,
        r: f64,
        delta: f64,
        extreme: Extreme,
    ) -> Result<QuantileEstimate> {
        if self.non_finite > 0 {
            return Err(StatsError::NonFinite("quantile samples"));
        }
        quantile_from_sorted(&self.sorted, population, r, delta, extreme)
    }

    /// The Stein baseline on the current prefix — equals
    /// [`stein_estimate`](crate::estimators::quantile::stein_estimate).
    pub fn stein(&self, population: usize, r: f64, delta: f64) -> Result<QuantileEstimate> {
        if self.non_finite > 0 {
            return Err(StatsError::NonFinite("quantile samples"));
        }
        stein_from_sorted(&self.sorted, population, r, delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{avg_estimate, count_estimate, quantile_estimate, sum_estimate, var_estimate};
    use smokescreen_rt::rng::StdRng;

    fn outputs(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0.0..9.0_f64).floor()).collect()
    }

    #[test]
    fn mean_kernel_matches_batch_at_every_prefix() {
        let data = outputs(1, 400);
        let pop = 8_000;
        let mut kernel = MeanKernel::new();
        for (i, &v) in data.iter().enumerate() {
            kernel.push(v);
            let prefix = &data[..=i];
            assert_eq!(kernel.avg(pop, 0.05).unwrap(), avg_estimate(prefix, pop, 0.05).unwrap());
            assert_eq!(kernel.sum(pop, 0.05).unwrap(), sum_estimate(prefix, pop, 0.05).unwrap());
        }
    }

    #[test]
    fn count_kernel_matches_batch_and_validates() {
        let data = outputs(2, 300);
        let indicators: Vec<f64> = data.iter().map(|&v| f64::from(v >= 4.0)).collect();
        let mut kernel = MeanKernel::new();
        for (i, &v) in indicators.iter().enumerate() {
            kernel.push(v);
            assert_eq!(
                kernel.count(9_000, 0.05).unwrap(),
                count_estimate(&indicators[..=i], 9_000, 0.05).unwrap()
            );
        }
        let mut bad = MeanKernel::new();
        bad.push(0.5);
        assert!(bad.count(10, 0.05).is_err());
    }

    #[test]
    fn var_kernel_matches_batch_at_every_prefix() {
        let data = outputs(3, 250);
        let mut kernel = VarKernel::new();
        for (i, &v) in data.iter().enumerate() {
            kernel.push(v);
            assert_eq!(
                kernel.estimate(5_000, 0.05).unwrap(),
                var_estimate(&data[..=i], 5_000, 0.05).unwrap()
            );
        }
    }

    #[test]
    fn order_kernel_matches_batch_at_every_prefix() {
        let data = outputs(4, 300);
        let mut kernel = OrderKernel::with_capacity(data.len());
        for (i, &v) in data.iter().enumerate() {
            kernel.push(v);
            for &(r, extreme) in &[(0.99, Extreme::Max), (0.5, Extreme::Max), (0.01, Extreme::Min)]
            {
                assert_eq!(
                    kernel.quantile(6_000, r, 0.05, extreme).unwrap(),
                    quantile_estimate(&data[..=i], 6_000, r, 0.05, extreme).unwrap()
                );
            }
        }
    }

    #[test]
    fn order_kernel_maintains_sorted_invariant() {
        let data = outputs(5, 200);
        let mut kernel = OrderKernel::new();
        for &v in &data {
            kernel.push(v);
        }
        let mut expected = data.clone();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(kernel.sorted(), &expected[..]);
        assert_eq!(kernel.n(), data.len());
    }

    #[test]
    fn order_kernel_rejects_non_finite_like_batch() {
        let mut kernel = OrderKernel::new();
        kernel.push(1.0);
        kernel.push(f64::NAN);
        assert_eq!(kernel.n(), 2);
        assert!(matches!(
            kernel.quantile(100, 0.5, 0.05, Extreme::Max),
            Err(StatsError::NonFinite(_))
        ));
        assert!(kernel.stein(100, 0.5, 0.05).is_err());
    }

    #[test]
    fn empty_kernels_error_like_batch() {
        assert!(MeanKernel::new().avg(10, 0.05).is_err());
        assert!(VarKernel::new().estimate(10, 0.05).is_err());
        assert!(OrderKernel::new().quantile(10, 0.5, 0.05, Extreme::Max).is_err());
    }

    #[test]
    fn mean_and_var_push_slice_bit_identical_to_pushes() {
        let data = outputs(6, 123);
        for len in [0usize, 1, 7, 8, 9, 16, 123] {
            for split in [0, len / 3, len] {
                let mut mean_scalar = MeanKernel::new();
                let mut var_scalar = VarKernel::new();
                for &v in &data[..len] {
                    mean_scalar.push(v);
                    var_scalar.push(v);
                }
                let mut mean_sliced = MeanKernel::new();
                mean_sliced.push_slice(&data[..split]);
                mean_sliced.push_slice(&data[split..len]);
                let mut var_sliced = VarKernel::new();
                var_sliced.push_slice(&data[..split]);
                var_sliced.push_slice(&data[split..len]);
                assert_eq!(mean_scalar, mean_sliced, "mean len={len} split={split}");
                assert_eq!(var_scalar, var_sliced, "var len={len} split={split}");
            }
        }
    }

    #[test]
    fn order_push_slice_merge_byte_identical_to_insertion() {
        // Heavy ties (integer counts in 0..9) are exactly the model-output
        // regime; the merged buffer must match binary insertion bitwise,
        // including a non-finite mixed in via both paths.
        let data = outputs(7, 300);
        let rungs = [0usize, 1, 2, 9, 10, 47, 160, 161, 300];
        let mut merged = OrderKernel::new();
        let mut inserted = OrderKernel::new();
        for w in rungs.windows(2) {
            merged.push_slice(&data[w[0]..w[1]]);
            for &v in &data[w[0]..w[1]] {
                inserted.push(v);
            }
            assert_eq!(merged, inserted, "prefix {}..{}", w[0], w[1]);
            assert_eq!(
                merged.sorted().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                inserted.sorted().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
        let with_nan = [f64::NAN, 3.0, f64::INFINITY, 1.0];
        merged.push_slice(&with_nan);
        for &v in &with_nan {
            inserted.push(v);
        }
        assert_eq!(merged, inserted);
        assert_eq!(merged.n(), data.len() + with_nan.len());
    }

    #[test]
    fn order_push_slice_fast_append_path() {
        // A batch strictly past the resident prefix must take the
        // extend-only path and still match insertion.
        let mut merged = OrderKernel::new();
        merged.push_slice(&[1.0, 0.0, 2.0]);
        merged.push_slice(&[5.0, 3.0, 4.0]);
        let mut inserted = OrderKernel::new();
        for v in [1.0, 0.0, 2.0, 5.0, 3.0, 4.0] {
            inserted.push(v);
        }
        assert_eq!(merged, inserted);
        assert_eq!(merged.sorted(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}
