//! Algorithm 3 — profile repair for combinations of random and non-random
//! interventions (§3.2.5).
//!
//! Outputs sampled from video degraded by **non-random** interventions
//! (reduced resolution, image removal) can be systematically biased, so the
//! bounds of Algorithms 1–2 are no longer valid. A *correction set* — model
//! outputs on frames degraded by random interventions only — anchors the
//! estimate: the triangle inequality routes the error through the
//! correction-set estimate, whose own bound *is* valid, yielding a repaired
//! bound with no distributional assumption on the non-randomly degraded
//! outputs.

use crate::estimators::quantile::QuantileEstimate;
use crate::{MeanEstimate, Result, StatsError};

/// Repairs the error bound of a mean-style estimate (AVG/SUM/COUNT) using a
/// correction-set estimate (Equation 12):
///
/// `err_b = (1 + err_b(v)) · |Y − Y(v)| / |Y(v)| + err_b(v)`.
///
/// * `degraded` — the estimate from the (possibly non-randomly) degraded
///   video, Algorithm 3 line 1.
/// * `correction` — the estimate computed **only** from the correction set
///   (random interventions alone), line 2.
///
/// The repaired bound holds with the same `1 − δ` probability as the
/// correction set's bound.
pub fn repair_mean_bound(degraded: &MeanEstimate, correction: &MeanEstimate) -> Result<f64> {
    if correction.y_approx == 0.0 {
        // The correction set itself is uninformative; the repaired bound
        // degenerates to "no guarantee better than total error".
        return Ok(f64::INFINITY);
    }
    if !degraded.y_approx.is_finite() || !correction.y_approx.is_finite() {
        return Err(StatsError::NonFinite("repair inputs"));
    }
    let shift = (degraded.y_approx - correction.y_approx).abs() / correction.y_approx.abs();
    Ok((1.0 + correction.err_b) * shift + correction.err_b)
}

/// Repairs the rank-error bound of a quantile estimate (MAX/MIN) using a
/// correction set (Equation 13):
///
/// `err_b = |rank_v(Y) − rank_v(Y(v))| / r + err_b(v)`,
///
/// where `rank_v(·)` is the normalized rank **within the correction set**
/// — the sampled proxy for the unknown true rank difference.
///
/// * `degraded` — quantile estimate from the degraded video.
/// * `correction` — quantile estimate from the correction set alone.
/// * `correction_values` — the correction set's raw model outputs
///   `v_1 … v_m` (needed to rank both estimates).
pub fn repair_rank_bound(
    degraded: &QuantileEstimate,
    correction: &QuantileEstimate,
    correction_values: &[f64],
) -> Result<f64> {
    if correction_values.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if degraded.r != correction.r {
        return Err(StatsError::InvalidQuantile(degraded.r));
    }
    let m = correction_values.len() as f64;
    let rank_of = |value: f64| -> f64 {
        correction_values.iter().filter(|&&v| v <= value).count() as f64 / m
    };
    let rank_diff = (rank_of(degraded.y_approx) - rank_of(correction.y_approx)).abs();
    Ok(rank_diff / degraded.r + correction.err_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::avg::avg_estimate;
    use crate::estimators::quantile::{quantile_estimate, true_rank_error, Extreme};
    use crate::sample::sample_indices;
    use smokescreen_rt::rng::StdRng;

    /// Population plus a biased view of it simulating a non-random
    /// intervention (systematic undercount: low resolution drops objects).
    fn biased_world(seed: u64, n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..8.0_f64).floor()).collect();
        let biased: Vec<f64> = truth
            .iter()
            .map(|&v| {
                // Each object missed with probability 0.3 — the hallmark of
                // reduced resolution.
                let mut kept = 0.0;
                for _ in 0..v as usize {
                    if rng.gen_bool(0.7) {
                        kept += 1.0;
                    }
                }
                kept
            })
            .collect();
        (truth, biased)
    }

    #[test]
    fn uncorrected_bound_fails_under_bias_but_repair_holds() {
        let (truth, biased) = biased_world(11, 10_000);
        let mu: f64 = truth.iter().sum::<f64>() / truth.len() as f64;

        // Estimate from biased outputs at a healthy fraction: the bound is
        // tight around the *biased* mean and therefore wrong.
        let idx = sample_indices(truth.len(), 5_000, 3).unwrap();
        let biased_sample: Vec<f64> = idx.iter().map(|&i| biased[i]).collect();
        let degraded = avg_estimate(&biased_sample, truth.len(), 0.05).unwrap();
        let true_err = ((degraded.y_approx - mu) / mu).abs();
        assert!(
            degraded.err_b < true_err,
            "expected the uncorrected bound to be misleading: bound={} true={}",
            degraded.err_b,
            true_err
        );

        // Correction set: unbiased outputs on a random 5% sample.
        let cidx = sample_indices(truth.len(), 500, 4).unwrap();
        let correction_sample: Vec<f64> = cidx.iter().map(|&i| truth[i]).collect();
        let correction = avg_estimate(&correction_sample, truth.len(), 0.05).unwrap();

        let repaired = repair_mean_bound(&degraded, &correction).unwrap();
        assert!(
            repaired >= true_err,
            "repaired bound must cover the truth: repaired={repaired} true={true_err}"
        );
    }

    #[test]
    fn repair_rank_bound_covers_bias() {
        let (truth, biased) = biased_world(13, 12_000);
        let r = 0.99;

        let idx = sample_indices(truth.len(), 6_000, 5).unwrap();
        let biased_sample: Vec<f64> = idx.iter().map(|&i| biased[i]).collect();
        let degraded =
            quantile_estimate(&biased_sample, truth.len(), r, 0.05, Extreme::Max).unwrap();

        let cidx = sample_indices(truth.len(), 800, 6).unwrap();
        let correction_values: Vec<f64> = cidx.iter().map(|&i| truth[i]).collect();
        let correction =
            quantile_estimate(&correction_values, truth.len(), r, 0.05, Extreme::Max).unwrap();

        let repaired = repair_rank_bound(&degraded, &correction, &correction_values).unwrap();
        let true_err = true_rank_error(&truth, degraded.y_approx, r);
        assert!(
            repaired >= true_err,
            "repaired={repaired} true={true_err}"
        );
    }

    #[test]
    fn repair_mean_bound_degenerates_gracefully() {
        let zero = MeanEstimate {
            y_approx: 0.0,
            err_b: 1.0,
            lb: 0.0,
            ub: 1.0,
            n: 3,
        };
        let fine = MeanEstimate {
            y_approx: 2.0,
            err_b: 0.1,
            lb: 1.8,
            ub: 2.2,
            n: 100,
        };
        assert!(repair_mean_bound(&fine, &zero).unwrap().is_infinite());
    }

    #[test]
    fn repair_with_unbiased_estimate_stays_close_to_correction_bound() {
        // When the "degraded" estimate is actually unbiased, the repaired
        // bound should be roughly the correction bound plus a small shift.
        let mut rng = StdRng::seed_from_u64(21);
        let truth: Vec<f64> = (0..8_000).map(|_| rng.gen_range(0.0..5.0_f64).floor()).collect();
        let idx = sample_indices(truth.len(), 2_000, 8).unwrap();
        let s: Vec<f64> = idx.iter().map(|&i| truth[i]).collect();
        let degraded = avg_estimate(&s, truth.len(), 0.05).unwrap();
        let cidx = sample_indices(truth.len(), 800, 9).unwrap();
        let cs: Vec<f64> = cidx.iter().map(|&i| truth[i]).collect();
        let correction = avg_estimate(&cs, truth.len(), 0.05).unwrap();
        let repaired = repair_mean_bound(&degraded, &correction).unwrap();
        assert!(repaired < correction.err_b + 0.5);
    }

    #[test]
    fn rank_repair_rejects_mismatched_r() {
        let a = QuantileEstimate {
            y_approx: 1.0,
            err_b: 0.1,
            r: 0.99,
            f_hat: 0.1,
            n: 10,
        };
        let b = QuantileEstimate { r: 0.95, ..a };
        assert!(repair_rank_bound(&a, &b, &[1.0, 2.0]).is_err());
    }
}
