//! VAR() estimation — an extension the paper names as future work (§7).
//!
//! The population variance decomposes as `Var = E[X²] − (E[X])²`, so two
//! mean-style confidence intervals — one on the squared outputs, one on
//! the raw outputs, each the tighter of Hoeffding–Serfling and empirical
//! Bernstein — combine by interval arithmetic into an interval on the
//! variance, from which the paper's harmonic estimate and symmetric
//! relative bound follow exactly as in Theorem 3.1.

use crate::bounds::{empirical_bernstein, hoeffding_serfling, MeanInterval};
use crate::{MeanEstimate, Result};

/// The tighter of the Hoeffding–Serfling and empirical Bernstein intervals
/// (both valid at level `δ`, so the minimum is too).
///
/// Variance estimation is a small difference of large quantities
/// (`E[X²] − (E[X])²`), so it needs the variance-adaptive Bernstein width
/// on the squares, where the raw range `R²` makes range-only bounds
/// hopeless at realistic sample sizes.
fn tight_interval_from_stats(
    stats: &crate::describe::RunningStats,
    population: usize,
    delta: f64,
) -> Result<MeanInterval> {
    let hs = hoeffding_serfling::interval_from_stats(stats, population, delta)?;
    let eb = empirical_bernstein::interval_from_stats(stats, population, delta)?;
    Ok(if eb.half_width < hs.half_width { eb } else { hs })
}

/// Estimates the population variance of the model outputs with a `1 − δ`
/// relative-error bound.
///
/// Splits the confidence budget evenly between the two underlying
/// intervals (`δ/2` each), so the combined interval holds with probability
/// at least `1 − δ` by the union bound. Relative bounds on VAR are
/// intrinsically wide: expect informative output only at sample fractions
/// well above those that suffice for AVG.
pub fn var_estimate(samples: &[f64], population: usize, delta: f64) -> Result<MeanEstimate> {
    let mut raw = crate::describe::RunningStats::new();
    let mut squares = crate::describe::RunningStats::new();
    for &v in samples {
        raw.push(v);
        squares.push(v * v);
    }
    var_estimate_from_stats(&raw, &squares, population, delta)
}

/// As [`var_estimate`], but from already-accumulated summaries of the raw
/// outputs and their squares — the entry point
/// [`VarKernel`](super::kernel::VarKernel) serves per-fraction bounds from.
/// Both summaries are Welford accumulations in sample order, so the batch
/// and incremental paths share identical state and identical formulas.
pub fn var_estimate_from_stats(
    raw: &crate::describe::RunningStats,
    squares: &crate::describe::RunningStats,
    population: usize,
    delta: f64,
) -> Result<MeanEstimate> {
    let iv_sq = tight_interval_from_stats(squares, population, delta / 2.0)?;
    let iv_mean = tight_interval_from_stats(raw, population, delta / 2.0)?;

    // Interval on E[X²].
    let sq_lo = (iv_sq.estimate - iv_sq.half_width).max(0.0);
    let sq_hi = iv_sq.estimate + iv_sq.half_width;
    // Interval on (E[X])² via |mean| interval endpoints.
    let m_lo = (iv_mean.estimate.abs() - iv_mean.half_width).max(0.0);
    let m_hi = iv_mean.estimate.abs() + iv_mean.half_width;

    let var_lo = (sq_lo - m_hi * m_hi).max(0.0);
    let var_hi = (sq_hi - m_lo * m_lo).max(0.0);

    Ok(MeanEstimate::from_interval(
        1.0,
        var_lo,
        var_hi.max(var_lo),
        raw.n(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::sample_indices;
    use smokescreen_rt::rng::StdRng;

    #[test]
    fn covers_true_variance() {
        let mut rng = StdRng::seed_from_u64(51);
        let pop: Vec<f64> = (0..10_000).map(|_| rng.gen_range(0.0..7.0_f64).floor()).collect();
        let mu: f64 = pop.iter().sum::<f64>() / pop.len() as f64;
        let var: f64 = pop.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / pop.len() as f64;

        let mut covered = 0;
        let trials = 150;
        for t in 0..trials {
            let idx = sample_indices(pop.len(), 1_500, 40 + t as u64).unwrap();
            let s: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
            let est = var_estimate(&s, pop.len(), 0.05).unwrap();
            if ((est.y_approx - var) / var).abs() <= est.err_b {
                covered += 1;
            }
        }
        assert!(covered as f64 / trials as f64 >= 0.95, "covered={covered}");
    }

    #[test]
    fn degenerate_constant_data() {
        let est = var_estimate(&[4.0; 100], 1_000, 0.05).unwrap();
        // Variance of a constant is zero; the interval collapses to
        // an uninformative-but-safe result.
        assert!(est.y_approx >= 0.0);
    }

    #[test]
    fn err_b_shrinks_with_sample_size() {
        let mut rng = StdRng::seed_from_u64(53);
        let pop: Vec<f64> = (0..20_000).map(|_| rng.gen_range(0.0..9.0)).collect();
        let sampler = crate::sample::PrefixSampler::new(pop.len(), 2);
        let small: Vec<f64> = sampler.prefix(500).iter().map(|&i| pop[i]).collect();
        let large: Vec<f64> = sampler.prefix(8_000).iter().map(|&i| pop[i]).collect();
        let e_small = var_estimate(&small, pop.len(), 0.05).unwrap();
        let e_large = var_estimate(&large, pop.len(), 0.05).unwrap();
        assert!(e_large.err_b < e_small.err_b);
    }
}
