//! Algorithm 2 — MAX()/MIN() estimation via extreme quantiles.
//!
//! True extremes cannot be bounded from a sample (only the sampled extreme
//! relates to them), so the paper replaces MAX with the `r`-quantile for
//! `r` near 1 (0.99 in the experiments) and MIN with `r` near 0. Accuracy
//! is measured on **ranks**, not values:
//! `|rank(Y_approx) − rank(Y_true)| / rank(Y_true)`, which matches the
//! ε-approximate-quantile definition and is robust to the hidden output
//! distribution.
//!
//! The bound leverages the normal approximation of the hypergeometric
//! distribution of `Σ_{i≤k} n_i` (sampled cumulative frequency of the true
//! quantile value) — Theorem 3.2 — and estimates the unobservable
//! `F_k`, `min F̂_i`, `max F_i` terms with the sampled frequency `F̂_k̂`.
//!
//! The [`stein_estimate`] baseline reproduces Manku et al. (1999): a
//! Hoeffding-style rank bound assuming sampling **with** replacement, which
//! the paper shows is looser at small sample fractions.

use crate::hypergeometric::fraction_std_err_factor;
use crate::{normal, Result, StatsError};

/// Which extreme Algorithm 2 is approximating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extreme {
    /// MAX — `r` close to 1 (Equation 7).
    Max,
    /// MIN — `r` close to 0 (Equation 8).
    Min,
}

/// The answer/bound pair for quantile (MAX/MIN) queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileEstimate {
    /// Approximate `r`-quantile value.
    pub y_approx: f64,
    /// Upper bound of the relative **rank** error, `≥ 1 − δ` probability.
    pub err_b: f64,
    /// Quantile position used.
    pub r: f64,
    /// Sampled frequency `F̂_k̂` of the approximate quantile value.
    pub f_hat: f64,
    /// Sample size consumed.
    pub n: usize,
}

/// Runs Algorithm 2 on sampled model outputs.
///
/// * `samples` — outputs on frames sampled without replacement.
/// * `population` — `N`.
/// * `r` — the quantile position (e.g. 0.99 for MAX, 0.01 for MIN).
pub fn quantile_estimate(
    samples: &[f64],
    population: usize,
    r: f64,
    delta: f64,
    extreme: Extreme,
) -> Result<QuantileEstimate> {
    crate::check_delta(delta)?;
    crate::check_sample(samples.len(), population)?;
    if !(r > 0.0 && r < 1.0) {
        return Err(StatsError::InvalidQuantile(r));
    }
    if samples.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite("quantile samples"));
    }

    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    quantile_from_sorted(&sorted, population, r, delta, extreme)
}

/// Algorithm 2 over an **already sorted** sample of finite values — the
/// entry point [`OrderKernel`](super::kernel::OrderKernel) serves each
/// fraction of a sweep from (it maintains the sorted prefix incrementally,
/// so no per-candidate re-sort happens). The batch [`quantile_estimate`]
/// sorts a copy and delegates here, so both paths are bit-for-bit equal.
pub fn quantile_from_sorted(
    sorted: &[f64],
    population: usize,
    r: f64,
    delta: f64,
    extreme: Extreme,
) -> Result<QuantileEstimate> {
    crate::check_delta(delta)?;
    crate::check_sample(sorted.len(), population)?;
    if !(r > 0.0 && r < 1.0) {
        return Err(StatsError::InvalidQuantile(r));
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");

    let n = sorted.len();
    // Y_approx = min{ s_i : Σ_{j≤i} F̂_j ≥ r } — the ⌈rn⌉-th order statistic.
    let idx = ((r * n as f64).ceil() as usize).clamp(1, n) - 1;
    let y_approx = sorted[idx];
    let f_hat = sampled_frequency(sorted, y_approx);

    let fpc = fraction_std_err_factor(population, n);
    let z = normal::two_sided_z(delta);

    let spread = match extreme {
        Extreme::Max => (r * (1.0 - r)).max(0.0).sqrt(),
        Extreme::Min => {
            let q = (r + f_hat).min(1.0);
            (q * (1.0 - q)).max(0.0).sqrt()
        }
    };
    // Equations (7)/(8) with the unobservable F_k / min F̂_i / max F_i all
    // estimated by F̂_k̂ as §3.2.4 prescribes.
    let err_b = ((z * spread * fpc + f_hat) / f_hat + 1.0) * (f_hat / r);

    Ok(QuantileEstimate {
        y_approx,
        err_b,
        r,
        f_hat,
        n,
    })
}

/// Sampled frequency `F̂_k̂` of `value` in a sorted sample: the equal-range
/// is found by `partition_point` lower/upper bounds in `O(log n)` instead
/// of a linear float-equality scan. Tied values are bit-equal copies of the
/// same order statistic, so the count — and therefore `f_hat` — matches
/// the scan exactly.
fn sampled_frequency(sorted: &[f64], value: f64) -> f64 {
    let lo = sorted.partition_point(|&v| v < value);
    let hi = sorted.partition_point(|&v| v <= value);
    (hi - lo) as f64 / sorted.len() as f64
}

/// The Stein-lemma baseline (Manku, Rajagopalan & Lindsay 1999).
///
/// With-replacement Hoeffding rank bound: the sampled cumulative frequency
/// deviates from the truth by at most `ε = √(ln(2/δ) / (2n))` with
/// probability `1 − δ`; the relative rank error is bounded by `ε / r`.
/// Shares the same sample-quantile point estimate as Algorithm 2 (§5.2.1:
/// "our query result estimation is the same as Stein's").
pub fn stein_estimate(
    samples: &[f64],
    population: usize,
    r: f64,
    delta: f64,
) -> Result<QuantileEstimate> {
    crate::check_delta(delta)?;
    crate::check_sample(samples.len(), population)?;
    if !(r > 0.0 && r < 1.0) {
        return Err(StatsError::InvalidQuantile(r));
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    stein_from_sorted(&sorted, population, r, delta)
}

/// The Stein baseline over an already sorted sample (the kernel-facing
/// entry point, mirroring [`quantile_from_sorted`]).
pub fn stein_from_sorted(
    sorted: &[f64],
    population: usize,
    r: f64,
    delta: f64,
) -> Result<QuantileEstimate> {
    crate::check_delta(delta)?;
    crate::check_sample(sorted.len(), population)?;
    if !(r > 0.0 && r < 1.0) {
        return Err(StatsError::InvalidQuantile(r));
    }
    let n = sorted.len();
    let idx = ((r * n as f64).ceil() as usize).clamp(1, n) - 1;
    let y_approx = sorted[idx];
    let f_hat = sampled_frequency(sorted, y_approx);
    let eps = ((2.0 / delta).ln() / (2.0 * n as f64)).sqrt();
    Ok(QuantileEstimate {
        y_approx,
        err_b: eps / r,
        r,
        f_hat,
        n,
    })
}

/// Normalized rank of `value` within the full population outputs:
/// `(# outputs ≤ value) / N`. This is the `Σ_{i≤k} F_i` of the paper.
pub fn population_rank(population_outputs: &[f64], value: f64) -> f64 {
    if population_outputs.is_empty() {
        return 0.0;
    }
    population_outputs.iter().filter(|&&v| v <= value).count() as f64
        / population_outputs.len() as f64
}

/// The true relative rank error between an approximate quantile and the
/// true `r`-quantile, evaluated on the (normally inaccessible) population.
/// Used only by the experiment harness to validate bounds.
pub fn true_rank_error(population_outputs: &[f64], y_approx: f64, r: f64) -> f64 {
    let mut sorted = population_outputs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    let idx = ((r * n as f64).ceil() as usize).clamp(1, n) - 1;
    let y_true = sorted[idx];
    let rank_true = population_rank(&sorted, y_true);
    let rank_approx = population_rank(&sorted, y_approx);
    if rank_true == 0.0 {
        return 0.0;
    }
    (rank_approx - rank_true).abs() / rank_true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::sample_indices;
    use smokescreen_rt::rng::StdRng;

    fn skewed_counts(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let base: f64 = rng.gen_range(0.0..6.0);
                let spike = if rng.gen_bool(0.02) {
                    rng.gen_range(6.0..14.0)
                } else {
                    0.0
                };
                (base + spike).floor()
            })
            .collect()
    }

    #[test]
    fn quantile_point_estimate_is_order_statistic() {
        let samples = [5.0, 1.0, 3.0, 2.0, 4.0];
        let q = quantile_estimate(&samples, 100, 0.99, 0.05, Extreme::Max).unwrap();
        assert_eq!(q.y_approx, 5.0);
        let q = quantile_estimate(&samples, 100, 0.5, 0.05, Extreme::Max).unwrap();
        assert_eq!(q.y_approx, 3.0);
        let q = quantile_estimate(&samples, 100, 0.01, 0.05, Extreme::Min).unwrap();
        assert_eq!(q.y_approx, 1.0);
    }

    #[test]
    fn rank_error_bound_covers_truth_for_max() {
        let pop = skewed_counts(4, 12_000);
        let trials = 200;
        let mut covered = 0;
        for t in 0..trials {
            let idx = sample_indices(pop.len(), 600, 300 + t as u64).unwrap();
            let s: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
            let est = quantile_estimate(&s, pop.len(), 0.99, 0.05, Extreme::Max).unwrap();
            let true_err = true_rank_error(&pop, est.y_approx, 0.99);
            if true_err <= est.err_b {
                covered += 1;
            }
        }
        assert!(covered as f64 / trials as f64 >= 0.95, "covered={covered}");
    }

    #[test]
    fn rank_error_bound_covers_truth_for_min() {
        let pop = skewed_counts(5, 12_000);
        let trials = 200;
        let mut covered = 0;
        for t in 0..trials {
            let idx = sample_indices(pop.len(), 600, 700 + t as u64).unwrap();
            let s: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
            let est = quantile_estimate(&s, pop.len(), 0.05, 0.05, Extreme::Min).unwrap();
            let true_err = true_rank_error(&pop, est.y_approx, 0.05);
            if true_err <= est.err_b {
                covered += 1;
            }
        }
        assert!(covered as f64 / trials as f64 >= 0.95, "covered={covered}");
    }

    #[test]
    fn tighter_than_stein_at_small_fractions() {
        // §5.2.1: "our error bound is tighter when the sample fraction is
        // small."
        let pop = skewed_counts(6, 15_000);
        for &n in &[30usize, 100, 300] {
            let idx = sample_indices(pop.len(), n, n as u64).unwrap();
            let s: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
            let ours = quantile_estimate(&s, pop.len(), 0.99, 0.05, Extreme::Max).unwrap();
            let stein = stein_estimate(&s, pop.len(), 0.99, 0.05).unwrap();
            assert!(
                ours.err_b < stein.err_b,
                "n={n}: ours={} stein={}",
                ours.err_b,
                stein.err_b
            );
            assert_eq!(ours.y_approx, stein.y_approx);
        }
    }

    #[test]
    fn f_hat_partition_point_matches_linear_scan_under_heavy_ties() {
        // Integer-valued detector outputs tie heavily; the partition_point
        // range search must count exactly what the old O(n) float-equality
        // scan counted, for every quantile position and both extremes.
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let samples: Vec<f64> = (0..500)
                .map(|_| rng.gen_range(0.0..4.0_f64).floor()) // only 4 distinct values
                .collect();
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for &r in &[0.01, 0.25, 0.5, 0.75, 0.99] {
                for &extreme in &[Extreme::Max, Extreme::Min] {
                    let est = quantile_estimate(&samples, 10_000, r, 0.05, extreme).unwrap();
                    let scan = sorted.iter().filter(|&&v| v == est.y_approx).count() as f64
                        / sorted.len() as f64;
                    assert_eq!(
                        est.f_hat, scan,
                        "trial={trial} r={r} extreme={extreme:?}: f_hat must be bit-identical"
                    );
                    assert!(est.f_hat > 0.1, "heavy ties make every value frequent");
                }
            }
        }
    }

    #[test]
    fn from_sorted_matches_batch_entry_points() {
        let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &r in &[0.1, 0.5, 0.9] {
            assert_eq!(
                quantile_estimate(&samples, 100, r, 0.05, Extreme::Max).unwrap(),
                quantile_from_sorted(&sorted, 100, r, 0.05, Extreme::Max).unwrap()
            );
            assert_eq!(
                stein_estimate(&samples, 100, r, 0.05).unwrap(),
                stein_from_sorted(&sorted, 100, r, 0.05).unwrap()
            );
        }
    }

    #[test]
    fn rejects_invalid_r() {
        assert!(quantile_estimate(&[1.0], 10, 0.0, 0.05, Extreme::Max).is_err());
        assert!(quantile_estimate(&[1.0], 10, 1.0, 0.05, Extreme::Max).is_err());
        assert!(stein_estimate(&[1.0], 10, 1.2, 0.05).is_err());
    }

    #[test]
    fn population_rank_basics() {
        let pop = [1.0, 2.0, 2.0, 3.0];
        assert_eq!(population_rank(&pop, 0.5), 0.0);
        assert_eq!(population_rank(&pop, 2.0), 0.75);
        assert_eq!(population_rank(&pop, 9.0), 1.0);
        assert_eq!(population_rank(&[], 1.0), 0.0);
    }

    #[test]
    fn true_rank_error_zero_for_exact_quantile() {
        let pop: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let mut sorted = pop.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let y_true = sorted[((0.99_f64 * 1000.0).ceil() as usize) - 1];
        assert_eq!(true_rank_error(&pop, y_true, 0.99), 0.0);
    }
}
