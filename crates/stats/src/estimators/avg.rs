//! Algorithm 1 — AVG() answer and error-bound estimation.
//!
//! The improvement over the EBGS baseline is twofold (Table 1 row 1):
//! the confidence interval is constructed **only at the terminal sample
//! size** `n` (no union bound over every step), and the interval itself is
//! the Hoeffding–Serfling without-replacement bound rather than the
//! empirical Bernstein bound, which is better suited to small samples.

use crate::bounds::hoeffding_serfling;
use crate::{MeanEstimate, Result};

/// Runs Algorithm 1 on the sampled model outputs.
///
/// * `samples` — model outputs `x_1 … x_n` on the degraded (sampled)
///   frames; sampling must have been without replacement.
/// * `population` — `N`, the number of frames naïve execution would process.
/// * `delta` — `δ`; the returned `err_b` holds with probability `≥ 1 − δ`.
///
/// Returns `Y_approx = sgn(x̄)·2·UB·LB/(UB+LB)` and
/// `err_b = (UB−LB)/(UB+LB)` per Theorem 3.1.
pub fn avg_estimate(samples: &[f64], population: usize, delta: f64) -> Result<MeanEstimate> {
    let interval = hoeffding_serfling::interval(samples, population, delta)?;
    estimate_from_interval(interval)
}

/// As [`avg_estimate`], but from an already-accumulated running summary —
/// the `O(1)` entry point [`MeanKernel`](super::kernel::MeanKernel) serves
/// each fraction of a sweep from. Sequential accumulation makes the summary
/// bit-identical to the batch scan, and both paths share the interval and
/// Theorem 3.1 code, so the results are bit-for-bit equal.
pub fn avg_estimate_from_stats(
    stats: &crate::describe::RunningStats,
    population: usize,
    delta: f64,
) -> Result<MeanEstimate> {
    let interval = hoeffding_serfling::interval_from_stats(stats, population, delta)?;
    estimate_from_interval(interval)
}

/// Theorem 3.1 applied to a mean confidence interval.
fn estimate_from_interval(interval: crate::bounds::MeanInterval) -> Result<MeanEstimate> {
    let mean_abs = interval.estimate.abs();
    let lb = (mean_abs - interval.half_width).max(0.0);
    let ub = mean_abs + interval.half_width;
    Ok(MeanEstimate::from_interval(
        interval.estimate.signum(),
        lb,
        ub,
        interval.n,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::ebgs;
    use crate::sample::sample_indices;
    use smokescreen_rt::rng::StdRng;

    /// Car-count-like population: integer, sparse, right-skewed.
    fn car_counts(seed: u64, n: usize, mean_level: f64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let lambda = mean_level * rng.gen_range(0.4..1.6_f64);
                // Cheap Poisson-ish draw.
                let mut k = 0u32;
                let mut p = 1.0;
                let l = (-lambda).exp();
                loop {
                    p *= rng.gen::<f64>();
                    if p <= l {
                        break;
                    }
                    k += 1;
                    if k > 60 {
                        break;
                    }
                }
                k as f64
            })
            .collect()
    }

    #[test]
    fn bound_covers_true_error() {
        let pop = car_counts(1, 10_000, 4.0);
        let mu: f64 = pop.iter().sum::<f64>() / pop.len() as f64;
        let trials = 300;
        let mut covered = 0;
        for t in 0..trials {
            let idx = sample_indices(pop.len(), 200, t as u64).unwrap();
            let s: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
            let est = avg_estimate(&s, pop.len(), 0.05).unwrap();
            if ((est.y_approx - mu) / mu).abs() <= est.err_b {
                covered += 1;
            }
        }
        assert!(covered as f64 / trials as f64 >= 0.95, "covered={covered}");
    }

    #[test]
    fn tighter_than_ebgs() {
        // Figure 4's headline comparison: same samples, our bound < EBGS.
        let pop = car_counts(2, 15_000, 6.0);
        for &n in &[50usize, 150, 500, 1500] {
            let idx = sample_indices(pop.len(), n, n as u64 * 31).unwrap();
            let s: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
            let ours = avg_estimate(&s, pop.len(), 0.05).unwrap();
            let theirs = ebgs::run(&s, pop.len(), 0.05).unwrap().estimate;
            assert!(
                ours.err_b <= theirs.err_b + 1e-12,
                "n={n}: ours={} ebgs={}",
                ours.err_b,
                theirs.err_b
            );
        }
    }

    #[test]
    fn err_b_decreases_with_fraction() {
        let pop = car_counts(3, 8_000, 5.0);
        let sampler = crate::sample::PrefixSampler::new(pop.len(), 17);
        let mut prev = f64::INFINITY;
        for &n in &[80usize, 400, 2000, 6000] {
            let s: Vec<f64> = sampler.prefix(n).iter().map(|&i| pop[i]).collect();
            let est = avg_estimate(&s, pop.len(), 0.05).unwrap();
            assert!(est.err_b < prev, "n={n}: err_b={} prev={prev}", est.err_b);
            prev = est.err_b;
        }
    }

    #[test]
    fn uninformative_when_sample_range_dwarfs_mean() {
        let est = avg_estimate(&[0.0, 0.0, 30.0], 10_000, 0.05).unwrap();
        assert_eq!(est.err_b, 1.0);
        assert_eq!(est.y_approx, 0.0);
    }

    #[test]
    fn exact_at_full_population() {
        let pop: Vec<f64> = (0..500).map(|i| (i % 9) as f64).collect();
        let mu: f64 = pop.iter().sum::<f64>() / pop.len() as f64;
        let est = avg_estimate(&pop, pop.len(), 0.05).unwrap();
        assert!((est.y_approx - mu).abs() / mu < 0.05);
        assert!(est.err_b < 0.05);
    }

    #[test]
    fn handles_negative_outputs() {
        // Outputs need not be counts — e.g. a UDF measuring signed offsets.
        let pop: Vec<f64> = (0..4_000).map(|i| -3.0 - ((i % 5) as f64) * 0.1).collect();
        let mu: f64 = pop.iter().sum::<f64>() / pop.len() as f64;
        let idx = sample_indices(pop.len(), 500, 5).unwrap();
        let s: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
        let est = avg_estimate(&s, pop.len(), 0.05).unwrap();
        assert!(est.y_approx < 0.0);
        assert!(((est.y_approx - mu) / mu).abs() <= est.err_b);
    }
}
