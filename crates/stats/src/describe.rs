//! Numerically stable summary statistics shared by all estimators.

/// Running summary statistics using Welford's online algorithm.
///
/// Supports incremental updates so the EBGS baseline can maintain per-step
/// means/variances in O(1), and tracks min/max so range-based bounds
/// (Hoeffding, Hoeffding–Serfling) need no second pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    n: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a slice in one pass.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Self::new();
        s.push_slice(values);
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Adds a batch of observations — bit-identical to calling
    /// [`push`](Self::push) on every element in slice order.
    ///
    /// The batch path walks the slice in fixed-width 8-element chunks. The
    /// **reduction order is pinned to the element index**: the Welford
    /// mean/M2 recurrence carries a loop dependency and is applied in
    /// element order, and the order-insensitive min/max accumulators fold
    /// their per-chunk lanes in lane order (lane = element index mod 8,
    /// restarting each chunk), which is again element order. Splitting one
    /// stream into any sequence of `push`/`push_slice` calls therefore
    /// produces the same bits — the determinism contract batched
    /// ingestion (and every thread count) relies on; see DESIGN.md
    /// "Pinned reduction order".
    pub fn push_slice(&mut self, values: &[f64]) {
        let mut n = self.n;
        let mut mean = self.mean;
        let mut m2 = self.m2;
        let mut min = self.min;
        let mut max = self.max;
        let mut chunks = values.chunks_exact(8);
        for chunk in &mut chunks {
            // Order-sensitive Welford recurrence: element order, hoisted
            // into locals so the chunk loop keeps state in registers.
            for &v in chunk {
                n += 1;
                let delta = v - mean;
                mean += delta / n as f64;
                m2 += delta * (v - mean);
            }
            // Order-insensitive range tracking: lanes fold in pinned lane
            // order, free of the recurrence's dependency chain.
            for &v in chunk {
                if v < min {
                    min = v;
                }
                if v > max {
                    max = v;
                }
            }
        }
        for &v in chunks.remainder() {
            n += 1;
            let delta = v - mean;
            mean += delta / n as f64;
            m2 += delta * (v - mean);
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = min;
        self.max = max;
    }

    /// Number of observations so far.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`; 0 when fewer than 2 samples).
    ///
    /// The empirical Bernstein bound is stated with the biased `1/n`
    /// variance, so that is the default here.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance (divides by `n - 1`; 0 when fewer than 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Observed range `max - min` (0 when empty or constant).
    pub fn range(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max - self.min
        }
    }
}

/// Means of consecutive **non-overlapping** full windows of `window`
/// observations (a trailing partial window is dropped; `window == 0`
/// yields nothing).
///
/// This is the summary the content-drift scorer baselines on: under
/// temporal autocorrelation (cars persist across frames, UA-DETRAC-style
/// sequence multipliers) the spread of window means is far wider than the
/// i.i.d. `σ/√W` prediction, so the scorer measures that spread
/// empirically from these values instead of deriving it from per-frame
/// variance.
pub fn windowed_means(values: &[f64], window: usize) -> Vec<f64> {
    if window == 0 {
        return Vec::new();
    }
    values
        .chunks_exact(window)
        .map(|chunk| RunningStats::from_slice(chunk).mean())
        .collect()
}

/// A fixed-bin histogram over non-negative integer-valued model outputs.
///
/// Used by the Figure 8 reproduction (predicted car-count distributions)
/// and by scene-generator calibration tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with bins `0..max_value` plus an overflow bin.
    pub fn new(max_value: usize) -> Self {
        Histogram {
            counts: vec![0; max_value],
            overflow: 0,
        }
    }

    /// Records one observation (values are floored to their integer bin).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            self.overflow += 1;
            return;
        }
        let bin = value.floor() as usize;
        match self.counts.get_mut(bin) {
            Some(c) => *c += 1,
            None => self.overflow += 1,
        }
    }

    /// Per-bin counts (not including the overflow bin).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of observations beyond the last bin (or non-finite/negative).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }

    /// Total-variation distance against another histogram with identical
    /// binning: `½ Σ |p_i − q_i|`. Returns 1.0 when either is empty.
    pub fn total_variation(&self, other: &Histogram) -> f64 {
        let (a, b) = (self.total(), other.total());
        if a == 0 || b == 0 {
            return 1.0;
        }
        let bins = self.counts.len().max(other.counts.len());
        let mut tv = 0.0;
        for i in 0..bins {
            let p = *self.counts.get(i).unwrap_or(&0) as f64 / a as f64;
            let q = *other.counts.get(i).unwrap_or(&0) as f64 / b as f64;
            tv += (p - q).abs();
        }
        tv += (self.overflow as f64 / a as f64 - other.overflow as f64 / b as f64).abs();
        tv / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_matches_two_pass() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let s = RunningStats::from_slice(&data);
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.range(), 8.0);
        assert_eq!(s.n(), 8);
    }

    #[test]
    fn running_stats_empty_and_single() {
        let s = RunningStats::new();
        assert_eq!(s.n(), 0);
        assert_eq!(s.range(), 0.0);
        assert_eq!(s.variance(), 0.0);

        let s = RunningStats::from_slice(&[7.5]);
        assert_eq!(s.mean(), 7.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.range(), 0.0);
    }

    #[test]
    fn push_slice_is_bit_identical_to_element_pushes() {
        // Chunk lengths straddling the 8-lane width, including empty and
        // exactly-one-chunk slices; every split of the same stream must
        // land on identical bits.
        let data: Vec<f64> = (0..57)
            .map(|i| ((i * 37 + 11) % 23) as f64 * 0.37 - 3.1)
            .collect();
        for len in [0usize, 1, 7, 8, 9, 16, 57] {
            let mut scalar = RunningStats::new();
            for &v in &data[..len] {
                scalar.push(v);
            }
            let mut sliced = RunningStats::new();
            sliced.push_slice(&data[..len]);
            assert_eq!(scalar, sliced, "len={len}");
            // And an uneven split at every point of the prefix.
            for split in 0..=len {
                let mut mixed = RunningStats::new();
                mixed.push_slice(&data[..split]);
                mixed.push_slice(&data[split..len]);
                assert_eq!(scalar, mixed, "len={len} split={split}");
            }
        }
    }

    #[test]
    fn sample_variance_uses_bessel() {
        let s = RunningStats::from_slice(&[1.0, 2.0, 3.0]);
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.sample_variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windowed_means_drops_partial_tail() {
        let data = [1.0, 3.0, 5.0, 7.0, 9.0, 11.0, 13.0];
        assert_eq!(windowed_means(&data, 2), vec![2.0, 6.0, 10.0]);
        assert_eq!(windowed_means(&data, 7), vec![7.0]);
        assert_eq!(windowed_means(&data, 8), Vec::<f64>::new());
        assert_eq!(windowed_means(&data, 0), Vec::<f64>::new());
        assert_eq!(windowed_means(&[], 4), Vec::<f64>::new());
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new(4);
        for v in [0.0, 1.2, 1.9, 3.0, 10.0, -1.0, f64::NAN] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[1, 2, 0, 1]);
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn tv_distance_identity_and_disjoint() {
        let mut a = Histogram::new(3);
        let mut b = Histogram::new(3);
        for _ in 0..10 {
            a.record(0.0);
            b.record(0.0);
        }
        assert!(a.total_variation(&b) < 1e-12);

        let mut c = Histogram::new(3);
        for _ in 0..10 {
            c.record(2.0);
        }
        assert!((a.total_variation(&c) - 1.0).abs() < 1e-12);
    }
}
