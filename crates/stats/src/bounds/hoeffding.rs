//! Hoeffding's inequality (the online-aggregation baseline).

use super::{summarize, MeanInterval};
use crate::Result;

/// Two-sided Hoeffding half-width: with probability at least `1 − δ`,
/// `|x̄ − μ| ≤ R √(ln(2/δ) / (2n))` where `R` is the value range.
///
/// The range is taken from the sample, matching how the paper's Algorithm 1
/// computes `R` (the true range is unknown under degradation).
pub fn interval(samples: &[f64], population: usize, delta: f64) -> Result<MeanInterval> {
    let stats = summarize(samples, population, delta)?;
    let n = stats.n() as f64;
    let half_width = stats.range() * ((2.0 / delta).ln() / (2.0 * n)).sqrt();
    Ok(MeanInterval {
        estimate: stats.mean(),
        half_width,
        n: stats.n(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_rt::rng::StdRng;

    #[test]
    fn shrinks_with_sample_size() {
        let mut rng = StdRng::seed_from_u64(5);
        let pop: Vec<f64> = (0..10_000).map(|_| rng.gen_range(0.0..8.0)).collect();
        let small = interval(&pop[..100], pop.len(), 0.05).unwrap();
        let large = interval(&pop[..5_000], pop.len(), 0.05).unwrap();
        assert!(large.half_width < small.half_width);
    }

    #[test]
    fn constant_sample_has_zero_width() {
        let iv = interval(&[3.0; 50], 1000, 0.05).unwrap();
        assert_eq!(iv.half_width, 0.0);
        assert_eq!(iv.estimate, 3.0);
    }

    #[test]
    fn coverage_on_uniform_population() {
        // Empirical coverage of the Hoeffding interval should comfortably
        // exceed 1 − δ (it is conservative).
        let mut rng = StdRng::seed_from_u64(11);
        let pop: Vec<f64> = (0..2_000).map(|_| rng.gen_range(0.0..10.0)).collect();
        let mu: f64 = pop.iter().sum::<f64>() / pop.len() as f64;
        let mut covered = 0;
        let trials = 300;
        for t in 0..trials {
            let idx = crate::sample::sample_indices(pop.len(), 80, t as u64).unwrap();
            let sample: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
            let iv = interval(&sample, pop.len(), 0.05).unwrap();
            if (iv.estimate - mu).abs() <= iv.half_width {
                covered += 1;
            }
        }
        assert!(covered as f64 / trials as f64 > 0.95, "covered={covered}");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(interval(&[], 10, 0.05).is_err());
        assert!(interval(&[1.0], 10, 0.0).is_err());
        assert!(interval(&[1.0; 20], 10, 0.05).is_err());
    }
}
