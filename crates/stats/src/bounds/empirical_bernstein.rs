//! Empirical Bernstein bound (Audibert, Munos & Szepesvári 2007).
//!
//! Variance-adaptive: for low-variance samples it beats range-only bounds,
//! at the price of an additive `O(R/n)` term. This is the per-step interval
//! the EBGS baseline unions over; it is also exposed on its own for
//! ablation benches.

use super::{summarize, MeanInterval};
use crate::Result;

/// Half-width of the fixed-`n` empirical Bernstein interval: with
/// probability at least `1 − δ`,
/// `|x̄ − μ| ≤ σ̂ √(2 ln(3/δ) / n) + 3 R ln(3/δ) / n`,
/// where `σ̂` is the (biased, `1/n`) sample standard deviation and `R` the
/// sample range.
pub fn interval(samples: &[f64], population: usize, delta: f64) -> Result<MeanInterval> {
    let stats = summarize(samples, population, delta)?;
    interval_from_stats(&stats, population, delta)
}

/// As [`interval`], but from an already-accumulated summary (the entry
/// point the streaming kernels use; bit-identical to the slice path).
pub fn interval_from_stats(
    stats: &crate::describe::RunningStats,
    population: usize,
    delta: f64,
) -> Result<MeanInterval> {
    super::validate_stats(stats, population, delta)?;
    let n = stats.n() as f64;
    let log_term = (3.0 / delta).ln();
    let half_width =
        stats.std_dev() * (2.0 * log_term / n).sqrt() + 3.0 * stats.range() * log_term / n;
    Ok(MeanInterval {
        estimate: stats.mean(),
        half_width,
        n: stats.n(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::hoeffding;
    use smokescreen_rt::rng::StdRng;

    #[test]
    fn beats_hoeffding_on_low_variance_data() {
        // Values concentrated near 5 with one outlier at 0 and one at 10:
        // the range is 10 but the variance is tiny.
        let mut sample = vec![5.0; 500];
        sample[0] = 0.0;
        sample[1] = 10.0;
        let eb = interval(&sample, 10_000, 0.05).unwrap();
        let h = hoeffding::interval(&sample, 10_000, 0.05).unwrap();
        assert!(eb.half_width < h.half_width);
    }

    #[test]
    fn coverage() {
        let mut rng = StdRng::seed_from_u64(77);
        let pop: Vec<f64> = (0..2_000).map(|_| rng.gen_range(0.0..4.0)).collect();
        let mu: f64 = pop.iter().sum::<f64>() / pop.len() as f64;
        let mut covered = 0;
        let trials = 300;
        for t in 0..trials {
            let idx = crate::sample::sample_indices(pop.len(), 120, 7_000 + t as u64).unwrap();
            let sample: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
            let iv = interval(&sample, pop.len(), 0.05).unwrap();
            if (iv.estimate - mu).abs() <= iv.half_width {
                covered += 1;
            }
        }
        assert!(covered as f64 / trials as f64 > 0.95);
    }

    #[test]
    fn zero_variance_zero_width() {
        let iv = interval(&[2.0; 64], 1_000, 0.05).unwrap();
        assert_eq!(iv.half_width, 0.0);
    }
}
