//! Central-limit-theorem interval with finite-population correction — the
//! online-aggregation normal bound the paper reproduces as a *brittle*
//! baseline (Figure 5): it is often the tightest interval on display but
//! offers no guarantee at small sample sizes, where it under-covers.

use super::{summarize, MeanInterval};
use crate::{normal, Result};

/// CLT half-width: `z_{1−δ/2} · s/√n · √((N − n)/(N − 1))`, where `s` is
/// the unbiased sample standard deviation and the last factor is the
/// finite-population correction for sampling without replacement.
pub fn interval(samples: &[f64], population: usize, delta: f64) -> Result<MeanInterval> {
    let stats = summarize(samples, population, delta)?;
    let n = stats.n();
    let big_n = population as f64;
    let fpc = if population > 1 {
        ((big_n - n as f64) / (big_n - 1.0)).max(0.0).sqrt()
    } else {
        0.0
    };
    let half_width = normal::two_sided_z(delta) * stats.sample_std_dev() / (n as f64).sqrt() * fpc;
    Ok(MeanInterval {
        estimate: stats.mean(),
        half_width,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::hoeffding_serfling;
    use smokescreen_rt::rng::StdRng;

    #[test]
    fn tighter_than_guaranteed_bounds_at_moderate_n() {
        let mut rng = StdRng::seed_from_u64(13);
        let pop: Vec<f64> = (0..5_000).map(|_| rng.gen_range(0.0..6.0)).collect();
        let idx = crate::sample::sample_indices(pop.len(), 500, 2).unwrap();
        let sample: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
        let c = interval(&sample, pop.len(), 0.05).unwrap();
        let hs = hoeffding_serfling::interval(&sample, pop.len(), 0.05).unwrap();
        assert!(c.half_width < hs.half_width);
    }

    #[test]
    fn under_covers_with_tiny_skewed_samples() {
        // Heavy-tailed population + n = 5: the CLT interval misses the mean
        // far more often than δ = 5% — the brittleness Figure 5 shows.
        let mut rng = StdRng::seed_from_u64(99);
        let pop: Vec<f64> = (0..4_000)
            .map(|_| {
                if rng.gen_bool(0.03) {
                    rng.gen_range(40.0..60.0)
                } else {
                    0.0
                }
            })
            .collect();
        let mu: f64 = pop.iter().sum::<f64>() / pop.len() as f64;
        let mut missed = 0;
        let trials = 400;
        for t in 0..trials {
            let idx = crate::sample::sample_indices(pop.len(), 5, 50_000 + t as u64).unwrap();
            let sample: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
            let iv = interval(&sample, pop.len(), 0.05).unwrap();
            if (iv.estimate - mu).abs() > iv.half_width {
                missed += 1;
            }
        }
        assert!(
            missed as f64 / trials as f64 > 0.10,
            "missed={missed}/{trials} — expected CLT to violate its nominal level"
        );
    }

    #[test]
    fn fpc_zeroes_width_at_full_sample() {
        let pop: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let iv = interval(&pop, pop.len(), 0.05).unwrap();
        assert!(iv.half_width.abs() < 1e-9);
    }
}
