//! Confidence-interval half-widths for the sample mean.
//!
//! Each submodule produces, from a sample of `n` outputs drawn without
//! replacement from a population of `N`, a half-width `I` such that
//! `|x̄ − μ| ≤ I` with probability at least `1 − δ`. The submodules are:
//!
//! * [`hoeffding`] — classic Hoeffding inequality (online aggregation
//!   baseline; assumes i.i.d., so it is the loosest here).
//! * [`hoeffding_serfling`] — Bardenet–Maillard's without-replacement
//!   refinement; the inequality Smokescreen's Algorithm 1 is built on.
//! * [`empirical_bernstein`] — variance-adaptive fixed-`n` bound.
//! * [`ebgs`] — the Empirical Bernstein Geometric Stopping construction of
//!   Mnih et al., used by the paper as its main baseline: anytime-valid
//!   intervals paid for with a union bound over steps.
//! * [`clt`] — central-limit-theorem normal interval with finite-population
//!   correction; tight but *not* a guaranteed bound (reproduced as the
//!   brittle baseline of Figure 5).
//!
//! All bounds degrade gracefully: a constant sample yields `I` proportional
//! to the observed range (zero), mirroring how the paper's Algorithm 1 uses
//! the *sample* range `R`.

pub mod clt;
pub mod ebgs;
pub mod empirical_bernstein;
pub mod hoeffding;
pub mod hoeffding_serfling;

use crate::describe::RunningStats;

/// A two-sided confidence interval for the population mean, plus the
/// derived relative-error upper bound used by baseline methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanInterval {
    /// Point estimate of the mean used by the method (usually `x̄`).
    pub estimate: f64,
    /// Half-width `I`: `|estimate − μ| ≤ I` with probability `≥ 1 − δ`.
    pub half_width: f64,
    /// Sample size the interval was computed from.
    pub n: usize,
}

impl MeanInterval {
    /// Upper bound of the **relative** error `|x̄ − μ| / |μ|`, obtained by
    /// dividing the absolute half-width by the lower bound of `|μ|`
    /// (the conversion the paper applies to the Hoeffding, Hoeffding–
    /// Serfling, and CLT baselines).
    ///
    /// When the interval covers zero the lower bound on `|μ|` is zero and
    /// no finite relative bound exists; `f64::INFINITY` is returned, which
    /// the experiment harness clips for display exactly as the paper's
    /// plots clip their y-axes.
    pub fn relative_error_bound(&self) -> f64 {
        let lb = self.estimate.abs() - self.half_width;
        if lb <= 0.0 {
            f64::INFINITY
        } else {
            self.half_width / lb
        }
    }
}

/// Shared input validation and summary for bound computations.
pub(crate) fn summarize(samples: &[f64], population: usize, delta: f64) -> crate::Result<RunningStats> {
    let stats = RunningStats::from_slice(samples);
    validate_stats(&stats, population, delta)?;
    Ok(stats)
}

/// Validation applied to an already-accumulated summary — the entry point
/// shared by the batch (slice) bound functions and the incremental
/// [`kernels`](crate::estimators::kernel) that carry a [`RunningStats`]
/// across a fraction sweep. Sequential accumulation makes the summary
/// bit-identical to `RunningStats::from_slice` over the same prefix, so
/// both paths feed the same state through the same formulas.
pub(crate) fn validate_stats(
    stats: &RunningStats,
    population: usize,
    delta: f64,
) -> crate::Result<()> {
    crate::check_delta(delta)?;
    crate::check_sample(stats.n(), population)?;
    if !stats.mean().is_finite() {
        return Err(crate::StatsError::NonFinite("sample values"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_bound_infinite_when_interval_covers_zero() {
        let iv = MeanInterval {
            estimate: 1.0,
            half_width: 2.0,
            n: 10,
        };
        assert!(iv.relative_error_bound().is_infinite());
    }

    #[test]
    fn relative_bound_finite_otherwise() {
        let iv = MeanInterval {
            estimate: 10.0,
            half_width: 2.0,
            n: 10,
        };
        assert!((iv.relative_error_bound() - 0.25).abs() < 1e-12);
    }
}
