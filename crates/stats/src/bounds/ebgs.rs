//! The EBGS (Empirical Bernstein Geometric Stopping) construction of
//! Mnih, Szepesvári & Audibert (2008) — the paper's primary AVG baseline.
//!
//! EBGS processes samples sequentially and maintains an **anytime-valid**
//! confidence sequence: at step `t` the empirical Bernstein half-width is
//! computed at confidence `δ_t` where `Σ_t δ_t ≤ δ` (we use
//! `δ_t = δ / (t (t + 1))`, a standard union-bound schedule). From the
//! running sequence it keeps
//!
//! * `LB = max_t (|x̄_t| − c_t)` and `UB = min_t (|x̄_t| + c_t)`,
//!
//! and reports the harmonic-style estimate
//! `Y = sgn(x̄) · 2·UB·LB / (UB + LB)` with relative-error bound
//! `(UB − LB) / (UB + LB)` — the very formulas the paper's Algorithm 1
//! adopts, but paid for with the union bound over every step, which is
//! exactly why Smokescreen's single-`n` Hoeffding–Serfling interval beats
//! it (Figure 4).
//!
//! Following §5.1, the stopping rule itself is not used: the full sample is
//! consumed and the terminal interval reported. A stopping variant is still
//! provided ([`run_with_stopping`]) because the profile generator's
//! early-stopping strategy (§3.3.2) wants it.

use crate::describe::RunningStats;
use crate::{MeanEstimate, Result};

/// Outcome of an EBGS pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EbgsOutcome {
    /// Query-result estimate `sgn(x̄) · 2·UB·LB / (UB + LB)`.
    pub estimate: MeanEstimate,
    /// Step at which the stopping predicate first held (sample count), or
    /// the total sample size if it never held / stopping was disabled.
    pub stopped_at: usize,
}

/// Runs EBGS over the whole sample without stopping (the baseline as
/// evaluated in the paper's §5.1).
pub fn run(samples: &[f64], population: usize, delta: f64) -> Result<EbgsOutcome> {
    run_impl(samples, population, delta, None)
}

/// Runs EBGS with the relative-error stopping rule of Mnih et al.:
/// stop as soon as `(1 + ε)·LB ≥ (1 − ε)·UB`.
pub fn run_with_stopping(
    samples: &[f64],
    population: usize,
    delta: f64,
    epsilon: f64,
) -> Result<EbgsOutcome> {
    run_impl(samples, population, delta, Some(epsilon))
}

fn run_impl(
    samples: &[f64],
    population: usize,
    delta: f64,
    stop_epsilon: Option<f64>,
) -> Result<EbgsOutcome> {
    crate::check_delta(delta)?;
    crate::check_sample(samples.len(), population)?;

    // Mnih et al. assume the value range R is known a priori. The fairest
    // stand-in under degradation — and the same information Algorithm 1
    // uses — is the full-sample range, fixed for every step (a running
    // range would make the first steps' intervals spuriously tight and
    // destroy anytime validity).
    let full = RunningStats::from_slice(samples);
    let range = full.range();

    let mut stats = RunningStats::new();
    let mut lb = 0.0_f64;
    let mut ub = f64::INFINITY;
    let mut sign = 0.0_f64;
    let mut stopped_at = samples.len();

    for (t, &x) in samples.iter().enumerate() {
        stats.push(x);
        let step = (t + 1) as f64;
        // Union-bound schedule: Σ δ/(t(t+1)) = δ.
        let delta_t = delta / (step * (step + 1.0));
        let log_term = (3.0 / delta_t).ln();
        let c_t = stats.std_dev() * (2.0 * log_term / step).sqrt() + 3.0 * range * log_term / step;

        let mean_abs = stats.mean().abs();
        lb = lb.max(mean_abs - c_t).max(0.0);
        ub = ub.min(mean_abs + c_t);
        sign = if stats.mean() >= 0.0 { 1.0 } else { -1.0 };

        if let Some(eps) = stop_epsilon {
            if (1.0 + eps) * lb >= (1.0 - eps) * ub {
                stopped_at = t + 1;
                break;
            }
        }
    }

    // Degenerate: the anytime sequence can produce UB < LB only by floating
    // point noise; clamp.
    if ub < lb {
        ub = lb;
    }
    let (y, err_b) = if lb <= 0.0 || ub == 0.0 {
        (0.0, 1.0)
    } else {
        (
            sign * 2.0 * ub * lb / (ub + lb),
            (ub - lb) / (ub + lb),
        )
    };

    Ok(EbgsOutcome {
        estimate: MeanEstimate {
            y_approx: y,
            err_b,
            lb,
            ub: if ub.is_finite() { ub } else { lb },
            n: stats.n(),
        },
        stopped_at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_rt::rng::StdRng;

    fn population(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0.0..6.0_f64).floor()).collect()
    }

    #[test]
    fn error_bound_is_valid() {
        let pop = population(3, 5_000);
        let mu: f64 = pop.iter().sum::<f64>() / pop.len() as f64;
        let mut ok = 0;
        let trials = 200;
        for t in 0..trials {
            let idx = crate::sample::sample_indices(pop.len(), 400, t as u64).unwrap();
            let sample: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
            let out = run(&sample, pop.len(), 0.05).unwrap();
            let true_rel = (out.estimate.y_approx - mu).abs() / mu;
            if true_rel <= out.estimate.err_b {
                ok += 1;
            }
        }
        assert!(ok as f64 / trials as f64 >= 0.95, "ok={ok}");
    }

    #[test]
    fn err_b_is_one_when_uninformative() {
        // A handful of samples with a huge range: LB collapses to zero.
        let out = run(&[0.0, 100.0, 0.0], 1_000, 0.05).unwrap();
        assert_eq!(out.estimate.err_b, 1.0);
        assert_eq!(out.estimate.y_approx, 0.0);
    }

    #[test]
    fn stopping_triggers_before_end_when_easy() {
        // Nearly constant positive data: relative interval tightens fast.
        let samples: Vec<f64> = (0..3_000).map(|i| 10.0 + (i % 3) as f64 * 0.01).collect();
        let out = run_with_stopping(&samples, 100_000, 0.05, 0.05).unwrap();
        assert!(out.stopped_at < samples.len(), "stopped_at={}", out.stopped_at);
        assert!(out.estimate.err_b <= 0.12);
    }

    #[test]
    fn estimate_between_bounds() {
        let pop = population(9, 2_000);
        let idx = crate::sample::sample_indices(pop.len(), 300, 4).unwrap();
        let sample: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
        let out = run(&sample, pop.len(), 0.05).unwrap();
        assert!(out.estimate.lb <= out.estimate.y_approx.abs());
        assert!(out.estimate.y_approx.abs() <= out.estimate.ub);
    }
}
