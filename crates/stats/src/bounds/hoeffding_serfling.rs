//! The Hoeffding–Serfling inequality for sampling **without replacement**
//! (Bardenet & Maillard 2015), the workhorse of the paper's Algorithm 1.

use super::{summarize, MeanInterval};
use crate::Result;

/// The shrink factor `ρ_n = min{ 1 − (n−1)/N, (1 − n/N)(1 + 1/n) }`.
///
/// `ρ_n → 0` as the sample exhausts the population, which is what makes
/// this bound strictly tighter than Hoeffding at non-trivial fractions and
/// exact (zero width) at `n = N`.
pub fn rho(n: usize, population: usize) -> f64 {
    debug_assert!(n >= 1 && n <= population);
    let n_f = n as f64;
    let big_n = population as f64;
    let a = 1.0 - (n_f - 1.0) / big_n;
    let b = (1.0 - n_f / big_n) * (1.0 + 1.0 / n_f);
    a.min(b).max(0.0)
}

/// Two-sided Hoeffding–Serfling half-width: with probability at least
/// `1 − δ`, `|x̄ − μ| ≤ R √(ρ_n ln(2/δ) / (2n))`.
pub fn interval(samples: &[f64], population: usize, delta: f64) -> Result<MeanInterval> {
    let stats = summarize(samples, population, delta)?;
    interval_from_stats(&stats, population, delta)
}

/// As [`interval`], but from an already-accumulated summary. The streaming
/// kernels use this to serve per-prefix bounds in `O(1)` without re-scanning
/// the sample; both entry points run the identical formula on identical
/// state, so results are bit-for-bit equal.
pub fn interval_from_stats(
    stats: &crate::describe::RunningStats,
    population: usize,
    delta: f64,
) -> Result<MeanInterval> {
    super::validate_stats(stats, population, delta)?;
    let n = stats.n();
    let half_width =
        stats.range() * (rho(n, population) * (2.0 / delta).ln() / (2.0 * n as f64)).sqrt();
    Ok(MeanInterval {
        estimate: stats.mean(),
        half_width,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::hoeffding;
    use smokescreen_rt::rng::StdRng;

    #[test]
    fn rho_limits() {
        // Tiny sample out of a huge population: essentially i.i.d., ρ ≈ 1.
        assert!((rho(1, 1_000_000) - 1.0).abs() < 1e-3);
        // Full sample: the mean is exact.
        assert!(rho(1000, 1000) < 1e-12 + 1.0 / 1000.0);
        // Monotone non-increasing in n.
        let mut prev = f64::INFINITY;
        for n in 1..=500 {
            let r = rho(n, 500);
            assert!(r <= prev + 1e-12, "n={n}");
            prev = r;
        }
    }

    #[test]
    fn never_looser_than_hoeffding() {
        let mut rng = StdRng::seed_from_u64(21);
        let pop: Vec<f64> = (0..5_000).map(|_| rng.gen_range(0.0..5.0)).collect();
        for &n in &[10usize, 100, 1000, 4000] {
            let idx = crate::sample::sample_indices(pop.len(), n, n as u64).unwrap();
            let sample: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
            let hs = interval(&sample, pop.len(), 0.05).unwrap();
            let h = hoeffding::interval(&sample, pop.len(), 0.05).unwrap();
            assert!(
                hs.half_width <= h.half_width + 1e-12,
                "n={n}: HS={} H={}",
                hs.half_width,
                h.half_width
            );
        }
    }

    #[test]
    fn width_vanishes_at_full_sample() {
        let pop: Vec<f64> = (0..200).map(|i| (i % 7) as f64).collect();
        let iv = interval(&pop, pop.len(), 0.05).unwrap();
        // ρ_N = min{1/N·?, ...}: (1 − (N−1)/N) = 1/N, so width ~ R √(ln(2/δ)/(2N²))
        assert!(iv.half_width < 0.1);
        let mu: f64 = pop.iter().sum::<f64>() / pop.len() as f64;
        assert!((iv.estimate - mu).abs() < 1e-12);
    }

    #[test]
    fn coverage_without_replacement() {
        let mut rng = StdRng::seed_from_u64(31);
        // Skewed population (like car counts): mostly small, some spikes.
        let pop: Vec<f64> = (0..3_000)
            .map(|_| {
                if rng.gen_bool(0.05) {
                    rng.gen_range(5.0..12.0)
                } else {
                    rng.gen_range(0.0..3.0)
                }
            })
            .collect();
        let mu: f64 = pop.iter().sum::<f64>() / pop.len() as f64;
        let trials = 400;
        let mut covered = 0;
        for t in 0..trials {
            let idx = crate::sample::sample_indices(pop.len(), 60, 1000 + t as u64).unwrap();
            let sample: Vec<f64> = idx.iter().map(|&i| pop[i]).collect();
            let iv = interval(&sample, pop.len(), 0.05).unwrap();
            if (iv.estimate - mu).abs() <= iv.half_width {
                covered += 1;
            }
        }
        assert!(covered as f64 / trials as f64 >= 0.95, "covered={covered}");
    }
}
