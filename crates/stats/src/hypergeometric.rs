//! Hypergeometric distribution primitives.
//!
//! Algorithm 2 rests on the observation that when `n` frames are sampled
//! without replacement from `N`, the number of sampled frames whose output
//! is `≤` some value follows a hypergeometric distribution, which admits a
//! normal approximation (Nicholson 1956) when `N`, `n`, and the class sizes
//! are large. This module provides the exact moments, the normal
//! approximation, and an exact PMF/CDF used in tests to validate the
//! approximation quality.

use crate::normal;

/// Mean of `Hypergeometric(N, K, n)`: draws without replacement of `n` items
/// from a population of `N` containing `K` successes.
pub fn mean(population: u64, successes: u64, draws: u64) -> f64 {
    if population == 0 {
        return 0.0;
    }
    draws as f64 * successes as f64 / population as f64
}

/// Variance of `Hypergeometric(N, K, n)`.
pub fn variance(population: u64, successes: u64, draws: u64) -> f64 {
    let big_n = population as f64;
    if population <= 1 {
        return 0.0;
    }
    let k = successes as f64;
    let n = draws as f64;
    n * (k / big_n) * (1.0 - k / big_n) * (big_n - n) / (big_n - 1.0)
}

/// The finite-population correction factor `√((N − n) / (n (N − 1)))` that
/// appears in the paper's Equation (7)/(8): the standard error of the sample
/// *fraction* of successes is `√(F(1−F)) ·` this factor.
pub fn fraction_std_err_factor(population: usize, draws: usize) -> f64 {
    let big_n = population as f64;
    let n = draws as f64;
    if population <= 1 || draws == 0 {
        return 0.0;
    }
    ((big_n - n) / (n * (big_n - 1.0))).sqrt().max(0.0)
}

/// Normal-approximation CDF of the hypergeometric: `P(X ≤ x)` with a
/// continuity correction.
pub fn normal_approx_cdf(population: u64, successes: u64, draws: u64, x: f64) -> f64 {
    let mu = mean(population, successes, draws);
    let var = variance(population, successes, draws);
    if var <= 0.0 {
        return if x >= mu { 1.0 } else { 0.0 };
    }
    normal::phi((x + 0.5 - mu) / var.sqrt())
}

/// Exact PMF of `Hypergeometric(N, K, n)` at `k`, computed in log space to
/// stay finite for the population sizes used in experiments (tens of
/// thousands of frames).
pub fn pmf(population: u64, successes: u64, draws: u64, k: u64) -> f64 {
    if k > draws || k > successes {
        return 0.0;
    }
    let failures = population - successes;
    if draws - k > failures {
        return 0.0;
    }
    (ln_choose(successes, k) + ln_choose(failures, draws - k) - ln_choose(population, draws)).exp()
}

/// Exact CDF `P(X ≤ x)` by summation of the PMF.
pub fn cdf(population: u64, successes: u64, draws: u64, x: u64) -> f64 {
    let hi = x.min(draws).min(successes);
    let mut acc = 0.0;
    for k in 0..=hi {
        acc += pmf(population, successes, draws, k);
    }
    acc.min(1.0)
}

/// `ln C(n, k)` via `ln Γ`.
fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos g=7, n=9 coefficients.
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n+1) = n!
        let mut fact = 1.0f64;
        for n in 1..15u64 {
            fact *= n as f64;
            assert!(
                (ln_gamma(n as f64 + 1.0) - fact.ln()).abs() < 1e-9,
                "n={n}"
            );
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let (big_n, k, n) = (50, 18, 12);
        let total: f64 = (0..=n).map(|x| pmf(big_n, k, n, x)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn moments_match_pmf() {
        let (big_n, k, n) = (60, 25, 15);
        let mut mu = 0.0;
        let mut m2 = 0.0;
        for x in 0..=n {
            let p = pmf(big_n, k, n, x);
            mu += x as f64 * p;
            m2 += (x as f64).powi(2) * p;
        }
        assert!((mu - mean(big_n, k, n)).abs() < 1e-9);
        assert!((m2 - mu * mu - variance(big_n, k, n)).abs() < 1e-8);
    }

    #[test]
    fn normal_approx_close_to_exact_for_large_parameters() {
        let (big_n, k, n) = (10_000, 4_000, 500);
        for x in [150u64, 180, 200, 220, 250] {
            let exact = cdf(big_n, k, n, x);
            let approx = normal_approx_cdf(big_n, k, n, x as f64);
            assert!(
                (exact - approx).abs() < 0.01,
                "x={x} exact={exact} approx={approx}"
            );
        }
    }

    #[test]
    fn fraction_std_err_factor_edges() {
        assert_eq!(fraction_std_err_factor(1, 1), 0.0);
        assert_eq!(fraction_std_err_factor(100, 0), 0.0);
        // Full sample: no sampling error remains.
        assert!(fraction_std_err_factor(100, 100).abs() < 1e-12);
        // Factor shrinks with larger draws.
        assert!(fraction_std_err_factor(1000, 10) > fraction_std_err_factor(1000, 100));
    }

    #[test]
    fn degenerate_populations() {
        assert_eq!(mean(0, 0, 0), 0.0);
        assert_eq!(variance(1, 1, 1), 0.0);
        assert_eq!(pmf(10, 5, 3, 4), 0.0); // k > draws
        assert_eq!(pmf(10, 2, 5, 3), 0.0); // k > successes
    }
}
