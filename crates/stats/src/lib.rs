//! Statistical substrate for Smokescreen: concentration inequalities and the
//! paper's query-answer / error-bound estimators.
//!
//! This crate is pure math: it never touches frames or detectors. It consumes
//! slices of per-frame model outputs and produces approximate aggregate
//! answers together with **upper bounds on the relative analytical error**
//! that hold with probability at least `1 - δ`.
//!
//! Layout mirrors Section 3 of the paper:
//!
//! * [`bounds`] — confidence-interval half-widths for the sample mean:
//!   Hoeffding, Hoeffding–Serfling, empirical Bernstein, the EBGS anytime
//!   construction (baseline), and the CLT normal bound (brittle baseline).
//! * [`estimators`] — Algorithm 1 (AVG, plus SUM/COUNT reductions),
//!   Algorithm 2 (MAX/MIN via extreme quantiles, plus the Stein baseline),
//!   Algorithm 3 (profile repair of biased bounds via a correction set),
//!   and the streaming [`kernel`](estimators::kernel) layer that serves the
//!   §3.3.2 ascending-fraction sweep incrementally, bit-identical to the
//!   batch estimators.
//! * [`normal`] / [`hypergeometric`] — distribution primitives implemented
//!   from scratch (no external stats crate).
//! * [`sample`] — seeded sampling without replacement, including nested
//!   prefix samples that power the paper's §3.3.2 reuse strategy.
//! * [`describe`] — numerically stable summary statistics.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bounds;
pub mod describe;
pub mod error;
pub mod estimators;
pub mod hypergeometric;
pub mod normal;
pub mod sample;

pub use error::StatsError;
pub use estimators::{
    avg::avg_estimate,
    count::count_estimate,
    kernel::{MeanKernel, OrderKernel, VarKernel},
    quantile::{quantile_estimate, Extreme, QuantileEstimate},
    repair::{repair_mean_bound, repair_rank_bound},
    sum::sum_estimate,
    variance::var_estimate,
    MeanEstimate,
};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StatsError>;

/// Validates a confidence parameter `δ ∈ (0, 1)`.
pub(crate) fn check_delta(delta: f64) -> Result<()> {
    if !(delta > 0.0 && delta < 1.0) {
        return Err(StatsError::InvalidDelta(delta));
    }
    Ok(())
}

/// Validates that a sample is non-empty and no larger than its population.
pub(crate) fn check_sample(n: usize, population: usize) -> Result<()> {
    if n == 0 {
        return Err(StatsError::EmptySample);
    }
    if population < n {
        return Err(StatsError::SampleExceedsPopulation { n, population });
    }
    Ok(())
}
