//! Standard-normal primitives implemented from scratch.
//!
//! The paper's Algorithm 2 and the CLT baseline both need normal quantiles
//! (`φ_{δ/2}` in the paper's notation). We implement the error function via
//! the Abramowitz–Stegun 7.1.26 rational approximation refined with one
//! Newton step, and the inverse CDF via Peter Acklam's algorithm refined with
//! one Halley step — both accurate to well below 1e-9 over the ranges used
//! here, which is orders of magnitude tighter than the statistical error of
//! anything built on top.

/// The error function `erf(x)`.
///
/// Uses the Maclaurin series for `|x| ≤ 3` (converges to machine precision
/// there) and the continued-fraction-free Abramowitz–Stegun 7.1.26 rational
/// approximation beyond, where `erf` is within `1.2e-7` of `±1` anyway.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    if x > 6.0 {
        return sign; // erf saturates to ±1 far in the tail
    }

    let y = if x <= 3.0 {
        // erf(x) = 2/√π · Σ_{k≥0} (-1)^k x^{2k+1} / (k! (2k+1))
        let mut term = x;
        let mut sum = x;
        let x2 = x * x;
        for k in 1..120 {
            term *= -x2 / k as f64;
            let add = term / (2 * k + 1) as f64;
            sum += add;
            if add.abs() < 1e-17 * sum.abs() {
                break;
            }
        }
        2.0 / std::f64::consts::PI.sqrt() * sum
    } else {
        // Abramowitz & Stegun 7.1.26.
        let t = 1.0 / (1.0 + 0.3275911 * x);
        1.0 - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp()
    };
    sign * y.clamp(-1.0, 1.0)
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal density `ϕ(x)`.
pub fn pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse standard normal CDF `Φ⁻¹(p)` (Acklam's algorithm + one Halley
/// refinement step).
///
/// # Panics
/// Never panics; returns `±INFINITY` at `p ∈ {0, 1}` and NaN outside `[0,1]`.
pub fn inverse_phi(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Coefficients for Acklam's rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against Φ.
    let e = phi(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// The two-sided Z-score `φ_{δ/2}` used in the paper: the value `z` such
/// that `P(|Z| > z) = δ` for standard normal `Z`, i.e. `Φ⁻¹(1 − δ/2)`.
pub fn two_sided_z(delta: f64) -> f64 {
    inverse_phi(1.0 - delta / 2.0)
}

/// The one-sided Z-score: `Φ⁻¹(1 − δ)`.
pub fn one_sided_z(delta: f64) -> f64 {
    inverse_phi(1.0 - delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-15);
        assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-9);
        assert!((erf(2.0) - 0.9953222650189527).abs() < 1e-9);
        assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-9);
    }

    #[test]
    fn phi_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 1.5, 2.3, 3.7] {
            assert!((phi(x) + phi(-x) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn inverse_phi_round_trip() {
        for &p in &[0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999] {
            let x = inverse_phi(p);
            assert!((phi(x) - p).abs() < 1e-10, "p={p} x={x} phi={}", phi(x));
        }
    }

    #[test]
    fn z_scores_match_tables() {
        // Classic table values.
        assert!((two_sided_z(0.05) - 1.959963985).abs() < 1e-6);
        assert!((two_sided_z(0.01) - 2.575829304).abs() < 1e-6);
        assert!((one_sided_z(0.05) - 1.644853627).abs() < 1e-6);
    }

    #[test]
    fn inverse_phi_edge_cases() {
        assert_eq!(inverse_phi(0.0), f64::NEG_INFINITY);
        assert_eq!(inverse_phi(1.0), f64::INFINITY);
        assert!(inverse_phi(-0.5).is_nan());
        assert!(inverse_phi(1.5).is_nan());
        assert!(inverse_phi(f64::NAN).is_nan());
    }

    #[test]
    fn pdf_integrates_to_cdf_slope() {
        // Finite-difference check dΦ/dx = ϕ.
        for &x in &[-2.0, -0.5, 0.0, 0.7, 1.9] {
            let h = 1e-6;
            let slope = (phi(x + h) - phi(x - h)) / (2.0 * h);
            assert!((slope - pdf(x)).abs() < 1e-6, "x={x}");
        }
    }
}
