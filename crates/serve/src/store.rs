//! Indexed columnar on-disk profile store.
//!
//! Grown out of `rt::journal`: the same framing/checksum/atomic-repair
//! contract (append + `sync_data` before ack, temp-file + rename for every
//! rewrite, quarantine-never-panic on corruption), extended in three ways:
//!
//! * **Keys, not sequences.** Records are keyed by
//!   [`StoreKey`] `{ camera, grid }` — one record per profiled `(f, p, c)`
//!   grid per camera — with a per-key sequence number instead of the
//!   journal's single global index. Later sequence wins on replay; a
//!   sequence rewind is corruption.
//! * **A fixed-width index segment** (`profiles.idx`), written atomically
//!   at compaction / clean shutdown. A valid index makes reopen O(live
//!   records) instead of O(data bytes): the map is rebuilt from 44-byte
//!   entries and only the data *tail* beyond the index high-water mark is
//!   scanned. A stale, torn, or bit-rotted index silently degrades to the
//!   full scan — the index is an accelerator, never a source of truth.
//! * **Columnar payloads.** A profile is stored as metadata plus
//!   contiguous per-column arrays (fraction, resolution, class masks,
//!   noise, quality, `y_approx`, `err_b`, sample size, corrected) — see
//!   [`encode_profile`]. Restricted/blurred class lists are canonicalized
//!   to the [`ObjectClass::ALL`] order by the mask representation.
//!
//! Durability contract: a [`ProfileStore::put`] that returns `Ok` has been
//! written and `sync_data`'d — a crash at any later byte cannot lose it
//! (it can only be quarantined by a *subsequent* corruption event, same as
//! `rt::journal`). [`ProfileStore::compact`] rewrites live records sorted
//! by key, so the post-compaction bytes are a pure function of the
//! surviving `(key → profile, seq)` map — the schedule-independence the
//! soak test pins.
//!
//! The chaos additions keep that contract under injected storage faults
//! ([`DiskFaultPlan`], threaded through
//! [`ProfileStore::open_with_options`]): a faulted append is never acked
//! and its torn bytes are truncated before the next append; a corrupted
//! read quarantines the record *with its index entry retained* so repair
//! can re-read it (transient faults heal), re-fetch an earlier intact
//! version from the append log (real rot), or let a fresh put supersede
//! it; and an incremental scrubber ([`ProfileStore::scrub_step`]) walks
//! the live map cross-checking payload checksums so rot is found before
//! a reader trips on it.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use smokescreen_core::{Aggregate, Profile, ProfilePoint};
use smokescreen_degrade::InterventionSet;
use smokescreen_rt::fault::{DiskFaultKind, DiskFaultPlan};
use smokescreen_rt::journal::{atomic_write, checksum64};
use smokescreen_video::codec::Quality;
use smokescreen_video::{ObjectClass, Resolution};

/// Data file name inside a store directory.
pub const DATA_FILE: &str = "profiles.data";
/// Index file name inside a store directory.
pub const INDEX_FILE: &str = "profiles.idx";

/// On-disk format version for both segments. Bumped on any incompatible
/// layout change; a mismatched file is quarantined wholesale, not misread.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Data-segment magic.
const DATA_MAGIC: [u8; 8] = *b"SMKSTOR\0";
/// Index-segment magic.
const IDX_MAGIC: [u8; 8] = *b"SMKSIDX\0";

/// Fixed portion of the data header preceding the identity bytes:
/// magic | version u32 | identity len u32 | identity checksum u64.
const DATA_HEADER_FIXED_LEN: usize = 8 + 4 + 4 + 8;

/// Record frame: camera u64 | grid u64 | seq u64 | payload len u32
/// | payload checksum u64 | header checksum u64 (over the preceding 36
/// bytes). The header checksum closes the gap the journal's sequential
/// index closes for it: without it, a bit flip in a key or seq field
/// with the payload intact would silently redirect an acked record.
const REC_HEADER_LEN: usize = 8 + 8 + 8 + 4 + 8 + 8;

/// Bytes of the record frame covered by the trailing header checksum.
const REC_HEADER_SUMMED: usize = REC_HEADER_LEN - 8;

/// Index header: magic | version u32 | identity checksum u64 | entry
/// count u32 | data high-water u64 | entries checksum u64.
const IDX_HEADER_LEN: usize = 8 + 4 + 8 + 4 + 8 + 8;

/// Index entry: camera u64 | grid u64 | seq u64 | payload offset u64
/// | payload len u32 | payload checksum u64.
const IDX_ENTRY_LEN: usize = 8 + 8 + 8 + 8 + 4 + 8;

/// Upper bound on a single payload (1 GiB); larger can only be corruption.
const MAX_PAYLOAD_LEN: u32 = 1 << 30;

/// Upper bound on profile points per record accepted by the decoder; a
/// larger count in a stored payload can only come from corruption.
const MAX_POINTS: u32 = 1 << 22;

/// Default read-cache capacity (records).
pub const DEFAULT_CACHE_CAP: usize = 256;

/// Store key: one record per camera per profiled degradation grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StoreKey {
    /// Stable camera identifier (see `camera::fleet::CameraId`).
    pub camera: u64,
    /// Grid identifier — a hash of the profiled `(corpus, model, class,
    /// aggregate, δ)` combination (see [`grid_id`]).
    pub grid: u64,
}

impl StoreKey {
    /// Convenience constructor.
    pub const fn new(camera: u64, grid: u64) -> Self {
        StoreKey { camera, grid }
    }
}

/// Stable grid identifier for a profile: a checksum over the canonical
/// `(corpus, model, class, aggregate, δ)` description, so the same logical
/// grid maps to the same key on every machine.
pub fn grid_id(profile: &Profile) -> u64 {
    let desc = format!(
        "{}/{}/{}/{:?}/{}",
        profile.corpus,
        profile.model,
        profile.class.name(),
        profile.aggregate,
        profile.delta
    );
    checksum64(desc.as_bytes())
}

/// What opening a store recovered, mirroring `rt::journal::Replay`.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct StoreReplay {
    /// Live records after replay (distinct keys).
    pub records: usize,
    /// Records recovered by scanning data bytes — all of them when no
    /// usable index existed, only the tail beyond the index high-water
    /// mark when the index fast path was taken.
    pub scanned_records: usize,
    /// Whether a valid index accelerated the reopen.
    pub index_used: bool,
    /// Corruption events detected and quarantined (each counts once, as in
    /// journal replay: everything after the first damage is discarded).
    pub quarantined_records: usize,
    /// Bytes discarded by quarantine and repair.
    pub quarantined_bytes: u64,
    /// Whether the damage was a torn tail write (mid-frame truncation).
    pub torn_tail: bool,
    /// Whether the data file did not exist and was freshly created.
    pub created: bool,
}

/// Monotonic operation counters, served verbatim by the daemon's `STATS`.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct StoreStats {
    /// Acked (durable) puts since open.
    pub puts: u64,
    /// Gets since open (hits + misses + not-found).
    pub gets: u64,
    /// Gets served from the read cache.
    pub cache_hits: u64,
    /// Gets that went to disk.
    pub cache_misses: u64,
    /// Records quarantined after open (lazy checksum/decode failures) plus
    /// records dropped by compaction as damaged.
    pub quarantined_records: u64,
    /// Bytes belonging to lazily quarantined records.
    pub quarantined_bytes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Quarantined records restored — by a clean re-read (a transient
    /// read fault healed) or by re-fetching an intact earlier version
    /// from the append log.
    pub repaired_records: u64,
    /// Records whose on-disk payload checksum the scrubber verified.
    pub scrubbed_records: u64,
    /// Complete scrub passes over the live key set.
    pub scrub_passes: u64,
    /// Injected write faults observed on the append path.
    pub disk_write_faults: u64,
    /// Injected read faults observed (corrupted read buffers).
    pub disk_read_faults: u64,
    /// Torn tails truncated back to the last durable offset after a
    /// failed append.
    pub tail_repairs: u64,
}

/// What a compaction accomplished.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionReport {
    /// Live records rewritten (key-sorted).
    pub live_records: usize,
    /// Bytes reclaimed from superseded and quarantined records.
    pub reclaimed_bytes: u64,
}

/// What one scrub step (or a full [`ProfileStore::scrub_pass`])
/// accomplished.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScrubReport {
    /// Live records whose on-disk bytes were re-read this step.
    pub scanned: u64,
    /// Records whose payload checksum verified clean.
    pub verified: u64,
    /// Quarantined records restored (healed re-read or log re-fetch).
    pub repaired: u64,
    /// Records newly quarantined by this step's verification reads.
    pub quarantined: u64,
    /// Records still quarantine-pending when the step finished.
    pub unrepaired: u64,
    /// Whether the incremental cursor completed a full pass and reset.
    pub wrapped: bool,
}

impl ScrubReport {
    /// Folds another step's counts into this report (cursor state —
    /// `wrapped` — is taken from the later step).
    pub fn absorb(&mut self, step: ScrubReport) {
        self.scanned += step.scanned;
        self.verified += step.verified;
        self.repaired += step.repaired;
        self.quarantined += step.quarantined;
        self.unrepaired = step.unrepaired;
        self.wrapped = step.wrapped;
    }
}

/// Why [`ProfileStore::get_outcome`] produced no profile — callers that
/// must distinguish "never stored" from "stored but damage-pending"
/// (degraded-mode serving, retrying clients) branch on this instead of
/// the `Option` the plain [`ProfileStore::get`] flattens to.
#[derive(Debug, Clone)]
pub enum GetOutcome {
    /// The record was served.
    Hit {
        /// Per-key sequence number of the served record.
        seq: u64,
        /// The stored profile.
        profile: Arc<Profile>,
    },
    /// No record has ever been stored under the key.
    Miss,
    /// A record exists but is quarantine-pending: its last read failed
    /// its checksum and repair has not succeeded yet. Retryable — the
    /// scrubber (or the next get) may restore it.
    Quarantined,
}

#[derive(Debug, Clone)]
struct IndexEntry {
    seq: u64,
    /// Payload offset in the data file (record header is the 36 bytes
    /// immediately preceding).
    offset: u64,
    len: u32,
    checksum: u64,
}

/// A record pulled out of the live map by a failed read, awaiting repair.
#[derive(Debug, Clone)]
struct QuarantineSlot {
    entry: IndexEntry,
    /// Failed repair attempts so far; past a threshold the scrubber
    /// falls back to re-fetching an earlier version from the append log.
    repair_attempts: u32,
}

/// Direct re-read failures before the scrubber tries the append-log
/// fallback for a quarantined record.
const LOG_REPAIR_THRESHOLD: u32 = 2;

struct CacheSlot {
    last_use: u64,
    seq: u64,
    profile: Arc<Profile>,
}

/// An open profile store (single writer; the daemon serializes access).
pub struct ProfileStore {
    dir: PathBuf,
    identity: String,
    /// Append handle; reopened after every atomic rewrite.
    data: File,
    /// Lazily opened read handle, invalidated by compaction.
    read: Option<File>,
    data_len: u64,
    map: BTreeMap<StoreKey, IndexEntry>,
    cache: BTreeMap<StoreKey, CacheSlot>,
    cache_cap: usize,
    tick: u64,
    stats: StoreStats,
    /// Set by [`ProfileStore::put_torn`]: the file tail is deliberately
    /// damaged and further appends would write unrecoverable framing.
    poisoned: bool,
    /// Armed disk-fault plan (`None` = clean I/O).
    faults: Option<DiskFaultPlan>,
    /// Records pulled from the live map by failed reads, pending repair.
    quarantined: BTreeMap<StoreKey, QuarantineSlot>,
    /// Append attempts per `(key, seq)` — a retried put rolls a fresh
    /// write-fault decision. Cleared on ack.
    write_attempts: BTreeMap<(StoreKey, u64), u32>,
    /// Read attempts per `(key, seq)` — the counter a transient
    /// [`DiskFaultKind::ReadBitFlip`] heals against. Kept across
    /// compaction so a healed record stays healed.
    read_attempts: BTreeMap<(StoreKey, u64), u32>,
    /// Whether a faulted append left bytes past `data_len` on disk; the
    /// next append (or scrub step) truncates them back first.
    tail_dirty: bool,
    /// Incremental scrub position: the last live key verified, `None`
    /// at the start of a pass.
    scrub_cursor: Option<StoreKey>,
}

impl ProfileStore {
    /// Opens (creating if absent) the store in `dir` for `identity`,
    /// replaying and repairing exactly like `rt::journal::open`: any
    /// quarantine rewrites the valid prefix atomically before the handle
    /// is returned, so appends always continue well-formed framing.
    pub fn open(dir: &Path, identity: &str) -> io::Result<(ProfileStore, StoreReplay)> {
        Self::open_with_cache(dir, identity, DEFAULT_CACHE_CAP)
    }

    /// [`ProfileStore::open`] with an explicit read-cache capacity.
    pub fn open_with_cache(
        dir: &Path,
        identity: &str,
        cache_cap: usize,
    ) -> io::Result<(ProfileStore, StoreReplay)> {
        Self::open_with_options(dir, identity, cache_cap, None)
    }

    /// [`ProfileStore::open`] with an explicit read-cache capacity and an
    /// optional armed [`DiskFaultPlan`] injected behind the store's I/O
    /// seams. Recovery itself always runs clean — the plan models the
    /// live append/read path, not the platter, so a cold audit of the
    /// same directory sees the true bytes.
    pub fn open_with_options(
        dir: &Path,
        identity: &str,
        cache_cap: usize,
        faults: Option<DiskFaultPlan>,
    ) -> io::Result<(ProfileStore, StoreReplay)> {
        std::fs::create_dir_all(dir)?;
        let data_path = dir.join(DATA_FILE);
        let idx_path = dir.join(INDEX_FILE);
        let header = data_header_bytes(identity);
        let mut replay = StoreReplay::default();
        let mut map = BTreeMap::new();

        let existing: Option<Vec<u8>> = match std::fs::read(&data_path) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };

        let data_len = match existing {
            None => {
                replay.created = true;
                atomic_write(&data_path, &header)?;
                let _ = std::fs::remove_file(&idx_path);
                header.len() as u64
            }
            Some(bytes) if !bytes.starts_with(&header) => {
                // Foreign identity, wrong version, damaged or truncated
                // header: nothing in the file can be attributed to our
                // keys — quarantine wholesale and start clean.
                replay.quarantined_records += 1;
                replay.quarantined_bytes = bytes.len() as u64;
                atomic_write(&data_path, &header)?;
                let _ = std::fs::remove_file(&idx_path);
                header.len() as u64
            }
            Some(bytes) => {
                let scan_from =
                    match load_index(&idx_path, identity, &bytes, header.len(), &mut map) {
                        Some(high_water) => {
                            replay.index_used = true;
                            high_water as usize
                        }
                        None => header.len(),
                    };
                let valid = scan_records(&bytes, scan_from, &mut map, &mut replay);
                if valid < bytes.len() {
                    replay.quarantined_bytes += (bytes.len() - valid) as u64;
                    atomic_write(&data_path, &bytes[..valid])?;
                }
                valid as u64
            }
        };

        replay.records = map.len();
        let data = OpenOptions::new().append(true).open(&data_path)?;
        Ok((
            ProfileStore {
                dir: dir.to_path_buf(),
                identity: identity.to_string(),
                data,
                read: None,
                data_len,
                map,
                cache: BTreeMap::new(),
                cache_cap,
                tick: 0,
                stats: StoreStats::default(),
                poisoned: false,
                faults,
                quarantined: BTreeMap::new(),
                write_attempts: BTreeMap::new(),
                read_attempts: BTreeMap::new(),
                tail_dirty: false,
                scrub_cursor: None,
            },
            replay,
        ))
    }

    /// Path of the data segment.
    pub fn data_path(&self) -> PathBuf {
        self.dir.join(DATA_FILE)
    }

    /// Path of the index segment.
    pub fn index_path(&self) -> PathBuf {
        self.dir.join(INDEX_FILE)
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no live records.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Live keys in sorted order.
    pub fn keys(&self) -> Vec<StoreKey> {
        self.map.keys().copied().collect()
    }

    /// Current sequence number for `key` (0 = absent). A
    /// quarantine-pending record still owns its sequence number — per-key
    /// seqs must stay monotone even while its bytes are under repair.
    pub fn seq(&self, key: StoreKey) -> u64 {
        let live = self.map.get(&key).map_or(0, |e| e.seq);
        let pending = self.quarantined.get(&key).map_or(0, |s| s.entry.seq);
        live.max(pending)
    }

    /// Number of records currently quarantine-pending (awaiting repair).
    pub fn quarantine_pending(&self) -> usize {
        self.quarantined.len()
    }

    /// Data segment size in bytes (header + all appended frames).
    pub fn data_bytes(&self) -> u64 {
        self.data_len
    }

    /// Operation counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Stores `profile` under `key` durably and returns the new per-key
    /// sequence number. When this returns `Ok`, the record has been
    /// `sync_data`'d — the ack IS the durability guarantee. Under an
    /// armed fault plan an append may fail with a torn tail or `EIO`;
    /// the write is then *not* acked, the torn bytes are truncated
    /// before the next append, and a retry (same key + seq, next
    /// attempt) rolls a fresh fault decision. A successful put for a
    /// quarantine-pending key supersedes the damaged record and clears
    /// its quarantine slot.
    pub fn put(&mut self, key: StoreKey, profile: &Profile) -> io::Result<u64> {
        debug_assert!(!self.poisoned, "store poisoned by put_torn");
        self.repair_tail()?;
        let payload = encode_profile(profile);
        let seq = self.seq(key) + 1;
        let frame = frame_record(key, seq, &payload);
        if let Some(plan) = self.faults {
            let attempt = self.write_attempts.entry((key, seq)).or_insert(0);
            *attempt += 1;
            if let Some(kind) = plan.write_fault(op_key(key, seq, *attempt)) {
                self.stats.disk_write_faults += 1;
                return Err(self.inject_write_fault(kind, &frame));
            }
        }
        self.data.write_all(&frame)?;
        self.data.sync_data()?;
        let offset = self.data_len + REC_HEADER_LEN as u64;
        self.data_len += frame.len() as u64;
        self.write_attempts.remove(&(key, seq));
        if self.quarantined.remove(&key).is_some() {
            // The new version replaces the damaged record outright — a
            // re-put IS a repair.
            self.stats.repaired_records += 1;
        }
        self.map.insert(
            key,
            IndexEntry {
                seq,
                offset,
                len: payload.len() as u32,
                checksum: checksum64(&payload),
            },
        );
        self.tick += 1;
        self.cache.insert(
            key,
            CacheSlot {
                last_use: self.tick,
                seq,
                profile: Arc::new(profile.clone()),
            },
        );
        self.evict();
        self.stats.puts += 1;
        Ok(seq)
    }

    /// Applies a scheduled write fault: writes whatever prefix of the
    /// frame the fault lets through, marks the tail dirty, and returns
    /// the error the caller surfaces instead of an ack.
    fn inject_write_fault(&mut self, kind: DiskFaultKind, frame: &[u8]) -> io::Error {
        let err =
            |what: &str| io::Error::new(io::ErrorKind::Other, format!("injected disk fault: {what}"));
        match kind {
            DiskFaultKind::Eio => err("EIO before any byte"),
            DiskFaultKind::ShortWrite { keep_frac } => {
                let keep = ((frame.len() as f64 * keep_frac) as usize)
                    .min(frame.len().saturating_sub(1));
                if self.data.write_all(&frame[..keep]).is_ok() {
                    let _ = self.data.sync_data();
                    self.tail_dirty = true;
                }
                err("short write (torn tail)")
            }
            DiskFaultKind::TornSync => {
                // The frame reaches the file but the sync "fails": the
                // bytes are not durable, so the ack is withheld and the
                // tail treated as torn.
                if self.data.write_all(frame).is_ok() {
                    self.tail_dirty = true;
                }
                err("sync failed after append")
            }
            DiskFaultKind::ReadBitFlip { .. } => {
                unreachable!("write stream never schedules read faults")
            }
        }
    }

    /// Truncates any torn bytes a faulted append left past the last
    /// durable offset, restoring the invariant that appends always
    /// continue well-formed framing.
    fn repair_tail(&mut self) -> io::Result<()> {
        if !self.tail_dirty {
            return Ok(());
        }
        self.data.set_len(self.data_len)?;
        self.data.sync_data()?;
        self.tail_dirty = false;
        self.stats.tail_repairs += 1;
        Ok(())
    }

    /// Deliberately writes a *torn* record — frame header plus a prefix of
    /// the payload — simulating a crash mid-append for the seeded crash
    /// tests (mirrors `JournalWriter::append_torn`). The write is never
    /// acked: the map is not updated, and the store must not be appended
    /// to afterwards; reopen will quarantine the tail.
    pub fn put_torn(&mut self, key: StoreKey, profile: &Profile, keep_frac: f64) -> io::Result<()> {
        let payload = encode_profile(profile);
        let seq = self.seq(key) + 1;
        let frame = frame_record(key, seq, &payload);
        let keep_payload = (payload.len() as f64 * keep_frac.clamp(0.0, 1.0)) as usize;
        let keep = (REC_HEADER_LEN + keep_payload).min(frame.len().saturating_sub(1));
        self.data.write_all(&frame[..keep])?;
        self.data.sync_data()?;
        self.data_len += keep as u64;
        self.poisoned = true;
        Ok(())
    }

    /// Fetches the profile stored under `key`. Returns the per-key
    /// sequence number alongside the profile. A record whose payload fails
    /// its checksum or decode is **quarantined** — removed from the map
    /// with counters bumped — and reported as absent, never panicked on.
    /// Callers that must tell "absent" from "quarantine-pending" use
    /// [`ProfileStore::get_outcome`].
    pub fn get(&mut self, key: StoreKey) -> io::Result<Option<(u64, Arc<Profile>)>> {
        Ok(match self.get_outcome(key)? {
            GetOutcome::Hit { seq, profile } => Some((seq, profile)),
            GetOutcome::Miss | GetOutcome::Quarantined => None,
        })
    }

    /// [`ProfileStore::get`] with a typed outcome. A get on a
    /// quarantine-pending key first attempts one direct repair (the
    /// re-read heals a transient read fault), so degraded keys recover
    /// on the read path itself, not only via the scrubber.
    pub fn get_outcome(&mut self, key: StoreKey) -> io::Result<GetOutcome> {
        self.stats.gets += 1;
        if self.quarantined.contains_key(&key) {
            return Ok(match self.try_repair_direct(key)? {
                Some((seq, profile)) => GetOutcome::Hit { seq, profile },
                None => GetOutcome::Quarantined,
            });
        }
        let entry = match self.map.get(&key) {
            Some(e) => e.clone(),
            None => return Ok(GetOutcome::Miss),
        };
        if let Some(slot) = self.cache.get_mut(&key) {
            if slot.seq == entry.seq {
                self.tick += 1;
                slot.last_use = self.tick;
                self.stats.cache_hits += 1;
                return Ok(GetOutcome::Hit {
                    seq: entry.seq,
                    profile: slot.profile.clone(),
                });
            }
        }
        self.stats.cache_misses += 1;
        let payload = match self.read_payload(key, &entry)? {
            Some(p) => p,
            None => {
                self.quarantine_key(key);
                return Ok(GetOutcome::Quarantined);
            }
        };
        match decode_profile(&payload) {
            Ok(profile) => {
                let profile = Arc::new(profile);
                self.tick += 1;
                self.cache.insert(
                    key,
                    CacheSlot {
                        last_use: self.tick,
                        seq: entry.seq,
                        profile: profile.clone(),
                    },
                );
                self.evict();
                Ok(GetOutcome::Hit {
                    seq: entry.seq,
                    profile,
                })
            }
            Err(_) => {
                self.quarantine_key(key);
                Ok(GetOutcome::Quarantined)
            }
        }
    }

    /// Reads `entry`'s payload bytes from disk and verifies the checksum;
    /// `Ok(None)` means the buffer failed verification (corrupt on disk,
    /// or corrupted in flight by an injected read fault). Each call
    /// advances the per-record read-attempt counter that transient
    /// bit-flips heal against.
    fn read_payload(&mut self, key: StoreKey, entry: &IndexEntry) -> io::Result<Option<Vec<u8>>> {
        if self.read.is_none() {
            self.read = Some(File::open(self.data_path())?);
        }
        let file = self.read.as_mut().expect("just opened");
        file.seek(SeekFrom::Start(entry.offset))?;
        let mut payload = vec![0u8; entry.len as usize];
        if file.read_exact(&mut payload).is_err() {
            return Ok(None);
        }
        if let Some(plan) = self.faults {
            let attempt = self.read_attempts.entry((key, entry.seq)).or_insert(0);
            *attempt += 1;
            if let Some(DiskFaultKind::ReadBitFlip { heals_after }) =
                plan.read_fault(op_key(key, entry.seq, 0))
            {
                if *attempt <= heals_after && !payload.is_empty() {
                    let at = (op_key(key, entry.seq, *attempt) as usize) % payload.len();
                    payload[at] ^= 0x01;
                    self.stats.disk_read_faults += 1;
                }
            }
        }
        if checksum64(&payload) != entry.checksum {
            return Ok(None);
        }
        Ok(Some(payload))
    }

    /// One direct repair attempt for a quarantined key: re-read the same
    /// bytes and restore the record if they verify and decode — which is
    /// exactly what heals a transient read-path fault. Returns the
    /// restored record on success.
    fn try_repair_direct(
        &mut self,
        key: StoreKey,
    ) -> io::Result<Option<(u64, Arc<Profile>)>> {
        let entry = match self.quarantined.get(&key) {
            Some(slot) => slot.entry.clone(),
            None => return Ok(None),
        };
        let restored = self
            .read_payload(key, &entry)?
            .and_then(|payload| decode_profile(&payload).ok());
        match restored {
            Some(profile) => {
                self.quarantined.remove(&key);
                self.map.insert(key, entry.clone());
                self.stats.repaired_records += 1;
                let profile = Arc::new(profile);
                self.tick += 1;
                self.cache.insert(
                    key,
                    CacheSlot {
                        last_use: self.tick,
                        seq: entry.seq,
                        profile: profile.clone(),
                    },
                );
                self.evict();
                Ok(Some((entry.seq, profile)))
            }
            None => {
                if let Some(slot) = self.quarantined.get_mut(&key) {
                    slot.repair_attempts += 1;
                }
                Ok(None)
            }
        }
    }

    /// Append-log fallback for a record whose bytes are damaged on disk:
    /// walk the data segment's frames — header checksums make
    /// payload-damaged frames skippable — and restore the newest intact
    /// earlier version of `key`. The caller must compact afterwards:
    /// until the damaged frame is rewritten out, a crash-reopen scan
    /// would stop at it and lose everything appended later.
    fn try_repair_log(&mut self, key: StoreKey) -> io::Result<bool> {
        let slot = match self.quarantined.get(&key) {
            Some(s) => s.clone(),
            None => return Ok(false),
        };
        let bytes = std::fs::read(self.data_path())?;
        let mut pos = data_header_bytes(&self.identity).len();
        let mut best: Option<IndexEntry> = None;
        while bytes.len() - pos >= REC_HEADER_LEN {
            if read_u64(&bytes, pos + REC_HEADER_SUMMED)
                != checksum64(&bytes[pos..pos + REC_HEADER_SUMMED])
            {
                break; // framing lost — nothing past here is walkable
            }
            let camera = read_u64(&bytes, pos);
            let grid = read_u64(&bytes, pos + 8);
            let seq = read_u64(&bytes, pos + 16);
            let len = read_u32(&bytes, pos + 24);
            let sum = read_u64(&bytes, pos + 28);
            if len > MAX_PAYLOAD_LEN || seq == 0 {
                break;
            }
            let payload_at = pos + REC_HEADER_LEN;
            let end = match payload_at.checked_add(len as usize) {
                Some(e) if e <= bytes.len() => e,
                _ => break,
            };
            let payload = &bytes[payload_at..end];
            if StoreKey::new(camera, grid) == key
                && seq <= slot.entry.seq
                && payload_at as u64 != slot.entry.offset
                && checksum64(payload) == sum
                && decode_profile(payload).is_ok()
                && best.as_ref().map_or(true, |b| seq >= b.seq)
            {
                best = Some(IndexEntry {
                    seq,
                    offset: payload_at as u64,
                    len,
                    checksum: sum,
                });
            }
            pos = end;
        }
        match best {
            Some(entry) => {
                self.quarantined.remove(&key);
                self.map.insert(key, entry);
                self.stats.repaired_records += 1;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Moves a key's live entry into the quarantine map with counters —
    /// the record stops being served (and counted in [`len`](Self::len))
    /// until a repair restores it.
    fn quarantine_key(&mut self, key: StoreKey) {
        if let Some(e) = self.map.remove(&key) {
            self.stats.quarantined_bytes += REC_HEADER_LEN as u64 + e.len as u64;
            self.quarantined.insert(
                key,
                QuarantineSlot {
                    entry: e,
                    repair_attempts: 0,
                },
            );
        }
        self.cache.remove(&key);
        self.stats.quarantined_records += 1;
    }

    /// One incremental scrub step: repair everything quarantine-pending,
    /// then re-read and checksum-verify up to `budget` live records past
    /// the cursor. Records that fail verification are quarantined (with
    /// counts) and immediately given one repair attempt. Repeatedly
    /// quarantined records fall back to the append-log re-fetch, which
    /// forces a compaction so the damaged frame cannot strand a future
    /// crash-reopen scan.
    pub fn scrub_step(&mut self, budget: usize) -> io::Result<ScrubReport> {
        self.repair_tail()?;
        let budget = budget.max(1);
        let mut report = ScrubReport::default();
        let mut log_repaired = false;
        for key in self.quarantined.keys().copied().collect::<Vec<_>>() {
            if self.try_repair_direct(key)?.is_some() {
                report.repaired += 1;
                continue;
            }
            let attempts = self.quarantined.get(&key).map_or(0, |s| s.repair_attempts);
            if attempts >= LOG_REPAIR_THRESHOLD && self.try_repair_log(key)? {
                report.repaired += 1;
                log_repaired = true;
            }
        }
        let keys: Vec<StoreKey> = match self.scrub_cursor {
            None => self.map.keys().take(budget).copied().collect(),
            Some(cur) => self
                .map
                .range((Bound::Excluded(cur), Bound::Unbounded))
                .take(budget)
                .map(|(k, _)| *k)
                .collect(),
        };
        for key in &keys {
            let entry = match self.map.get(key) {
                Some(e) => e.clone(),
                None => continue,
            };
            report.scanned += 1;
            if self.read_payload(*key, &entry)?.is_some() {
                report.verified += 1;
                self.stats.scrubbed_records += 1;
            } else {
                self.quarantine_key(*key);
                report.quarantined += 1;
                if self.try_repair_direct(*key)?.is_some() {
                    report.repaired += 1;
                }
            }
        }
        self.scrub_cursor = keys.last().copied();
        if keys.len() < budget {
            self.scrub_cursor = None;
            report.wrapped = true;
            self.stats.scrub_passes += 1;
        }
        if log_repaired {
            self.compact()?;
        }
        report.unrepaired = self.quarantined.len() as u64;
        Ok(report)
    }

    /// Runs scrub steps until a full pass over the live key set
    /// completes, folding the step reports together.
    pub fn scrub_pass(&mut self) -> io::Result<ScrubReport> {
        let mut report = ScrubReport::default();
        loop {
            let step = self.scrub_step(64)?;
            report.absorb(step);
            if step.wrapped {
                return Ok(report);
            }
        }
    }

    /// Rewrites the data segment with only live records, **sorted by
    /// key**, and writes a fresh index atomically. After compaction the
    /// on-disk bytes are a pure function of the live `(key, seq, profile)`
    /// map — independent of the append order that produced it.
    pub fn compact(&mut self) -> io::Result<CompactionReport> {
        // Drain the quarantine first: transient read faults heal on
        // re-read, so injected damage never survives into the compacted
        // bytes. Whatever stays damaged after the attempts below is real
        // rot — dropped with counts, never carried forward.
        for _ in 0..4 {
            if self.quarantined.is_empty() {
                break;
            }
            let mut progressed = false;
            for key in self.quarantined.keys().copied().collect::<Vec<_>>() {
                if self.try_repair_direct(key)?.is_some() {
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        self.quarantined.clear();
        let data = std::fs::read(self.data_path())?;
        let header = data_header_bytes(&self.identity);
        let mut out = Vec::with_capacity(data.len());
        out.extend_from_slice(&header);
        let mut new_map = BTreeMap::new();
        for (key, e) in &self.map {
            let start = e.offset as usize;
            let end = start + e.len as usize;
            let payload = data.get(start..end).unwrap_or(&[]);
            if checksum64(payload) != e.checksum {
                // Bit-rot discovered while compacting: drop the record
                // with counts, never carry damage forward.
                self.stats.quarantined_records += 1;
                self.stats.quarantined_bytes += REC_HEADER_LEN as u64 + e.len as u64;
                continue;
            }
            let offset = (out.len() + REC_HEADER_LEN) as u64;
            out.extend_from_slice(&frame_record(*key, e.seq, payload));
            new_map.insert(
                *key,
                IndexEntry {
                    seq: e.seq,
                    offset,
                    len: e.len,
                    checksum: e.checksum,
                },
            );
        }
        atomic_write(&self.data_path(), &out)?;
        let reclaimed = self.data_len.saturating_sub(out.len() as u64);
        self.data_len = out.len() as u64;
        self.map = new_map;
        self.write_index()?;
        // The rename replaced the inode: reopen both handles.
        self.data = OpenOptions::new().append(true).open(self.data_path())?;
        self.read = None;
        self.cache.clear();
        // The rewrite dropped any torn tail along with the old inode.
        self.tail_dirty = false;
        self.scrub_cursor = None;
        self.stats.compactions += 1;
        Ok(CompactionReport {
            live_records: self.map.len(),
            reclaimed_bytes: reclaimed,
        })
    }

    /// Writes the index segment for the current map atomically.
    fn write_index(&self) -> io::Result<()> {
        let mut entries = Vec::with_capacity(self.map.len() * IDX_ENTRY_LEN);
        for (key, e) in &self.map {
            entries.extend_from_slice(&key.camera.to_le_bytes());
            entries.extend_from_slice(&key.grid.to_le_bytes());
            entries.extend_from_slice(&e.seq.to_le_bytes());
            entries.extend_from_slice(&e.offset.to_le_bytes());
            entries.extend_from_slice(&e.len.to_le_bytes());
            entries.extend_from_slice(&e.checksum.to_le_bytes());
        }
        let mut buf = Vec::with_capacity(IDX_HEADER_LEN + entries.len());
        buf.extend_from_slice(&IDX_MAGIC);
        buf.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&checksum64(self.identity.as_bytes()).to_le_bytes());
        buf.extend_from_slice(&(self.map.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.data_len.to_le_bytes());
        buf.extend_from_slice(&checksum64(&entries).to_le_bytes());
        buf.extend_from_slice(&entries);
        atomic_write(&self.index_path(), &buf)
    }

    fn evict(&mut self) {
        while self.cache.len() > self.cache_cap {
            let oldest = self
                .cache
                .iter()
                .min_by_key(|(_, slot)| slot.last_use)
                .map(|(k, _)| *k)
                .expect("non-empty cache");
            self.cache.remove(&oldest);
        }
    }
}

fn data_header_bytes(identity: &str) -> Vec<u8> {
    let id = identity.as_bytes();
    let mut buf = Vec::with_capacity(DATA_HEADER_FIXED_LEN + id.len());
    buf.extend_from_slice(&DATA_MAGIC);
    buf.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(id.len() as u32).to_le_bytes());
    buf.extend_from_slice(&checksum64(id).to_le_bytes());
    buf.extend_from_slice(id);
    buf
}

fn frame_record(key: StoreKey, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(REC_HEADER_LEN + payload.len());
    buf.extend_from_slice(&key.camera.to_le_bytes());
    buf.extend_from_slice(&key.grid.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&checksum64(payload).to_le_bytes());
    buf.extend_from_slice(&checksum64(&buf).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Folds a record identity (and attempt ordinal) into the 64-bit
/// operation key the disk-fault plan decides on. Write ops key on
/// `(key, seq, attempt)` so a retried append rolls a fresh decision;
/// read ops key on `(key, seq, 0)` so every reader of a record sees the
/// same scheduled fate (healing is the attempt counter's job).
pub(crate) fn op_key(key: StoreKey, seq: u64, attempt: u32) -> u64 {
    let mut x = key.camera.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= key.grid.rotate_left(21);
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ seq.rotate_left(42);
    x.wrapping_mul(0x94D0_49BB_1331_11EB) ^ attempt as u64
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

/// Attempts the index fast path: returns the data high-water mark to scan
/// from when the index is valid and consistent with `data`, `None` to
/// fall back to a full scan. Every entry's record header is cross-checked
/// against the data bytes, so a stale or rotted index can never inject a
/// record the data segment does not carry.
fn load_index(
    idx_path: &Path,
    identity: &str,
    data: &[u8],
    data_header_len: usize,
    map: &mut BTreeMap<StoreKey, IndexEntry>,
) -> Option<u64> {
    let bytes = std::fs::read(idx_path).ok()?;
    if bytes.len() < IDX_HEADER_LEN
        || bytes[..8] != IDX_MAGIC
        || read_u32(&bytes, 8) != STORE_FORMAT_VERSION
        || read_u64(&bytes, 12) != checksum64(identity.as_bytes())
    {
        return None;
    }
    let count = read_u32(&bytes, 20) as usize;
    let high_water = read_u64(&bytes, 24);
    let entries_sum = read_u64(&bytes, 32);
    if bytes.len() != IDX_HEADER_LEN + count * IDX_ENTRY_LEN
        || high_water < data_header_len as u64
        || high_water > data.len() as u64
    {
        return None;
    }
    let entries = &bytes[IDX_HEADER_LEN..];
    if checksum64(entries) != entries_sum {
        return None;
    }
    let mut loaded = BTreeMap::new();
    for i in 0..count {
        let at = i * IDX_ENTRY_LEN;
        let camera = read_u64(entries, at);
        let grid = read_u64(entries, at + 8);
        let seq = read_u64(entries, at + 16);
        let offset = read_u64(entries, at + 24);
        let len = read_u32(entries, at + 32);
        let sum = read_u64(entries, at + 36);
        if offset < (data_header_len + REC_HEADER_LEN) as u64
            || offset + len as u64 > high_water
            || seq == 0
        {
            return None;
        }
        let rec = offset as usize - REC_HEADER_LEN;
        if read_u64(data, rec) != camera
            || read_u64(data, rec + 8) != grid
            || read_u64(data, rec + 16) != seq
            || read_u32(data, rec + 24) != len
            || read_u64(data, rec + 28) != sum
            || read_u64(data, rec + REC_HEADER_SUMMED)
                != checksum64(&data[rec..rec + REC_HEADER_SUMMED])
        {
            return None;
        }
        let prev = loaded.insert(
            StoreKey { camera, grid },
            IndexEntry {
                seq,
                offset,
                len,
                checksum: sum,
            },
        );
        if prev.is_some() {
            return None; // duplicate key in an index is corruption
        }
    }
    *map = loaded;
    Some(high_water)
}

/// Scans data bytes from `from`, folding valid records into `map` (later
/// per-key sequence wins) and returning the byte length of the valid
/// region. Stops at the first damaged record: framing downstream of
/// damage cannot be trusted, exactly as in journal replay.
fn scan_records(
    bytes: &[u8],
    from: usize,
    map: &mut BTreeMap<StoreKey, IndexEntry>,
    replay: &mut StoreReplay,
) -> usize {
    let mut pos = from;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return pos; // clean end
        }
        if remaining < REC_HEADER_LEN {
            replay.quarantined_records += 1;
            replay.torn_tail = true;
            return pos;
        }
        if read_u64(bytes, pos + REC_HEADER_SUMMED)
            != checksum64(&bytes[pos..pos + REC_HEADER_SUMMED])
        {
            // Damaged frame header: no field in it can be trusted, not
            // even the length that would locate the next record.
            replay.quarantined_records += 1;
            return pos;
        }
        let camera = read_u64(bytes, pos);
        let grid = read_u64(bytes, pos + 8);
        let seq = read_u64(bytes, pos + 16);
        let len = read_u32(bytes, pos + 24);
        let sum = read_u64(bytes, pos + 28);
        if len > MAX_PAYLOAD_LEN || seq == 0 {
            replay.quarantined_records += 1;
            return pos;
        }
        if remaining - REC_HEADER_LEN < len as usize {
            // Frame header intact but payload truncated: a torn append.
            replay.quarantined_records += 1;
            replay.torn_tail = true;
            return pos;
        }
        let payload = &bytes[pos + REC_HEADER_LEN..pos + REC_HEADER_LEN + len as usize];
        if checksum64(payload) != sum {
            replay.quarantined_records += 1;
            return pos;
        }
        let key = StoreKey { camera, grid };
        if let Some(prev) = map.get(&key) {
            // Per-key sequences only advance; a rewind means these bytes
            // are not an append stream we wrote.
            if seq <= prev.seq {
                replay.quarantined_records += 1;
                return pos;
            }
        }
        map.insert(
            key,
            IndexEntry {
                seq,
                offset: (pos + REC_HEADER_LEN) as u64,
                len,
                checksum: sum,
            },
        );
        replay.scanned_records += 1;
        pos += REC_HEADER_LEN + len as usize;
    }
}

// ---------------------------------------------------------------------------
// Columnar profile codec
// ---------------------------------------------------------------------------

/// Encodes a profile into the columnar payload layout:
///
/// ```text
/// corpus len u32 | corpus bytes | model len u32 | model bytes
/// class u8 | aggregate tag u8 | aggregate param f64 | delta f64
/// n_points u32
/// fraction f64×n | res_w u32×n | res_h u32×n (0,0 = native)
/// restricted mask u8×n | blurred mask u8×n
/// noise f64×n | quality f64×n (-1 = none)
/// y_approx f64×n | err_b f64×n | n u64×n | corrected u8×n
/// ```
///
/// Restricted/blurred class lists are represented as bitmasks over
/// [`ObjectClass::ALL`], which canonicalizes their order and drops
/// duplicates; everything else round-trips exactly.
pub fn encode_profile(p: &Profile) -> Vec<u8> {
    let pts = &p.points;
    let mut buf = Vec::with_capacity(64 + pts.len() * 54);
    put_str(&mut buf, &p.corpus);
    put_str(&mut buf, &p.model);
    buf.push(class_index(p.class));
    let (tag, param) = aggregate_tag(&p.aggregate);
    buf.push(tag);
    buf.extend_from_slice(&param.to_le_bytes());
    buf.extend_from_slice(&p.delta.to_le_bytes());
    buf.extend_from_slice(&(pts.len() as u32).to_le_bytes());
    for pt in pts {
        buf.extend_from_slice(&pt.set.sample_fraction.to_le_bytes());
    }
    for pt in pts {
        buf.extend_from_slice(&pt.set.resolution.map_or(0, |r| r.width).to_le_bytes());
    }
    for pt in pts {
        buf.extend_from_slice(&pt.set.resolution.map_or(0, |r| r.height).to_le_bytes());
    }
    for pt in pts {
        buf.push(class_mask(&pt.set.restricted));
    }
    for pt in pts {
        buf.push(class_mask(&pt.set.blurred));
    }
    for pt in pts {
        buf.extend_from_slice(&pt.set.noise.to_le_bytes());
    }
    for pt in pts {
        buf.extend_from_slice(&pt.set.quality.map_or(-1.0, |q| q.value()).to_le_bytes());
    }
    for pt in pts {
        buf.extend_from_slice(&pt.y_approx.to_le_bytes());
    }
    for pt in pts {
        buf.extend_from_slice(&pt.err_b.to_le_bytes());
    }
    for pt in pts {
        buf.extend_from_slice(&(pt.n as u64).to_le_bytes());
    }
    for pt in pts {
        buf.push(pt.corrected as u8);
    }
    buf
}

/// Decodes a columnar payload, validating every field with the same
/// defense-in-depth the JSON profile codec applies: this decoder runs on
/// replayed storage bytes, so anything out of range is corruption to
/// reject, never data to propagate.
pub fn decode_profile(bytes: &[u8]) -> Result<Profile, String> {
    let mut cur = Cursor { bytes, pos: 0 };
    let corpus = cur.take_str()?;
    let model = cur.take_str()?;
    let class = class_from_index(cur.take_u8()?)?;
    let tag = cur.take_u8()?;
    let param = cur.take_f64()?;
    let aggregate = aggregate_from_tag(tag, param)?;
    let delta = cur.take_f64()?;
    if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
        return Err(format!("delta {delta} is not a confidence parameter"));
    }
    let n = cur.take_u32()?;
    if n > MAX_POINTS {
        return Err(format!("point count {n} exceeds limit"));
    }
    let n = n as usize;
    let fractions = cur.take_f64s(n)?;
    let res_w = cur.take_u32s(n)?;
    let res_h = cur.take_u32s(n)?;
    let restricted = cur.take_bytes(n)?.to_vec();
    let blurred = cur.take_bytes(n)?.to_vec();
    let noise = cur.take_f64s(n)?;
    let quality = cur.take_f64s(n)?;
    let y_approx = cur.take_f64s(n)?;
    let err_b = cur.take_f64s(n)?;
    let samples = cur.take_u64s(n)?;
    let corrected = cur.take_bytes(n)?.to_vec();
    if cur.pos != bytes.len() {
        return Err("trailing bytes after columns".into());
    }

    let mut points = Vec::with_capacity(n);
    for i in 0..n {
        let f = fractions[i];
        if !f.is_finite() || !(0.0..=1.0).contains(&f) {
            return Err(format!("sample fraction {f} out of range"));
        }
        let resolution = match (res_w[i], res_h[i]) {
            (0, 0) => None,
            (0, _) | (_, 0) => return Err("one-sided resolution".into()),
            (w, h) => Some(Resolution::new(w, h)),
        };
        let nz = noise[i];
        if !nz.is_finite() || !(0.0..=1.0).contains(&nz) {
            return Err(format!("noise {nz} out of range"));
        }
        let q = quality[i];
        let quality_i = if q == -1.0 {
            None
        } else if q.is_finite() && (0.0..=1.0).contains(&q) {
            Some(Quality::new(q))
        } else {
            return Err(format!("quality {q} out of range"));
        };
        let y = y_approx[i];
        if !y.is_finite() {
            return Err("y_approx is not finite".into());
        }
        let e = err_b[i];
        if !e.is_finite() || e < 0.0 {
            return Err(format!("err_b {e} is not a valid bound"));
        }
        if corrected[i] > 1 {
            return Err("corrected flag is not boolean".into());
        }
        points.push(ProfilePoint {
            set: InterventionSet {
                sample_fraction: f,
                resolution,
                restricted: classes_from_mask(restricted[i])?,
                blurred: classes_from_mask(blurred[i])?,
                noise: nz,
                quality: quality_i,
            },
            y_approx: y,
            err_b: e,
            corrected: corrected[i] == 1,
            n: samples[i] as usize,
        });
    }
    Ok(Profile {
        corpus,
        model,
        class,
        aggregate,
        delta,
        points,
    })
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn class_index(class: ObjectClass) -> u8 {
    ObjectClass::ALL
        .iter()
        .position(|c| *c == class)
        .expect("class in ALL") as u8
}

fn class_from_index(idx: u8) -> Result<ObjectClass, String> {
    ObjectClass::ALL
        .get(idx as usize)
        .copied()
        .ok_or_else(|| format!("class index {idx} out of range"))
}

fn class_mask(classes: &[ObjectClass]) -> u8 {
    ObjectClass::ALL
        .iter()
        .enumerate()
        .fold(0u8, |m, (i, c)| {
            if classes.contains(c) {
                m | (1 << i)
            } else {
                m
            }
        })
}

fn classes_from_mask(mask: u8) -> Result<Vec<ObjectClass>, String> {
    if mask >= 1 << ObjectClass::ALL.len() {
        return Err(format!("class mask {mask:#x} has unknown bits"));
    }
    Ok(ObjectClass::ALL
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, c)| *c)
        .collect())
}

fn aggregate_tag(a: &Aggregate) -> (u8, f64) {
    match a {
        Aggregate::Avg => (0, 0.0),
        Aggregate::Sum => (1, 0.0),
        Aggregate::Var => (2, 0.0),
        Aggregate::Count { at_least } => (3, *at_least),
        Aggregate::Max { r } => (4, *r),
        Aggregate::Min { r } => (5, *r),
        Aggregate::Quantile { r } => (6, *r),
    }
}

fn aggregate_from_tag(tag: u8, param: f64) -> Result<Aggregate, String> {
    let quantile_ok = param.is_finite() && param > 0.0 && param < 1.0;
    match tag {
        0 => Ok(Aggregate::Avg),
        1 => Ok(Aggregate::Sum),
        2 => Ok(Aggregate::Var),
        3 if param.is_finite() => Ok(Aggregate::Count { at_least: param }),
        4 if quantile_ok => Ok(Aggregate::Max { r: param }),
        5 if quantile_ok => Ok(Aggregate::Min { r: param }),
        6 if quantile_ok => Ok(Aggregate::Quantile { r: param }),
        _ => Err(format!("aggregate tag {tag} / param {param} invalid")),
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or("payload truncated")?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn take_u8(&mut self) -> Result<u8, String> {
        Ok(self.take_bytes(1)?[0])
    }

    fn take_u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take_bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn take_f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(
            self.take_bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn take_str(&mut self) -> Result<String, String> {
        let len = self.take_u32()? as usize;
        if len > 4096 {
            return Err(format!("string length {len} exceeds limit"));
        }
        String::from_utf8(self.take_bytes(len)?.to_vec()).map_err(|_| "invalid utf-8".into())
    }

    fn take_u32s(&mut self, n: usize) -> Result<Vec<u32>, String> {
        let raw = self.take_bytes(n * 4)?;
        Ok((0..n).map(|i| read_u32(raw, i * 4)).collect())
    }

    fn take_u64s(&mut self, n: usize) -> Result<Vec<u64>, String> {
        let raw = self.take_bytes(n * 8)?;
        Ok((0..n).map(|i| read_u64(raw, i * 8)).collect())
    }

    fn take_f64s(&mut self, n: usize) -> Result<Vec<f64>, String> {
        let raw = self.take_bytes(n * 8)?;
        Ok((0..n)
            .map(|i| f64::from_le_bytes(raw[i * 8..i * 8 + 8].try_into().expect("8 bytes")))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smokescreen-store-tests-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_profile(tag: u64) -> Profile {
        let mut points = Vec::new();
        for i in 0..4u64 {
            let mut set = InterventionSet::sampling(0.1 + 0.2 * i as f64);
            if i % 2 == 0 {
                set.resolution = Some(Resolution::square(128 + 64 * i as u32));
            }
            if i == 1 {
                set.restricted = vec![ObjectClass::Person, ObjectClass::Face];
                set.blurred = vec![ObjectClass::Face];
            }
            if i == 3 {
                set.noise = 0.25;
                set.quality = Some(Quality::new(0.5));
            }
            points.push(ProfilePoint {
                set,
                y_approx: 1.5 + tag as f64 + i as f64,
                err_b: 0.01 * (i + 1) as f64,
                corrected: i == 3,
                n: 100 * (tag as usize + 1),
            });
        }
        Profile {
            corpus: format!("corpus-{tag}"),
            model: "oracle".into(),
            class: ObjectClass::Car,
            aggregate: Aggregate::Count { at_least: 1.0 },
            delta: 0.05,
            points,
        }
    }

    #[test]
    fn codec_round_trips_exactly() {
        let p = sample_profile(7);
        let bytes = encode_profile(&p);
        let back = decode_profile(&bytes).unwrap();
        assert_eq!(p, back);
        // All aggregate shapes survive.
        for agg in [
            Aggregate::Avg,
            Aggregate::Sum,
            Aggregate::Var,
            Aggregate::Max { r: 0.99 },
            Aggregate::Min { r: 0.01 },
            Aggregate::Quantile { r: 0.5 },
        ] {
            let mut q = sample_profile(1);
            q.aggregate = agg;
            assert_eq!(decode_profile(&encode_profile(&q)).unwrap(), q);
        }
    }

    #[test]
    fn codec_rejects_malformed_payloads() {
        let good = encode_profile(&sample_profile(0));
        assert!(decode_profile(&[]).is_err());
        assert!(decode_profile(&good[..good.len() - 1]).is_err(), "truncated");
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_profile(&trailing).is_err(), "trailing bytes");
        // Corrupt the class byte (after the two length-prefixed strings).
        let corpus_len = read_u32(&good, 0) as usize;
        let model_len = read_u32(&good, 4 + corpus_len) as usize;
        let class_at = 4 + corpus_len + 4 + model_len;
        let mut bad_class = good.clone();
        bad_class[class_at] = 99;
        assert!(decode_profile(&bad_class).is_err(), "class index");
        let mut bad_tag = good;
        bad_tag[class_at + 1] = 9;
        assert!(decode_profile(&bad_tag).is_err(), "aggregate tag");
    }

    #[test]
    fn put_get_and_reopen_via_full_scan() {
        let dir = tmp_store("basic");
        let k1 = StoreKey::new(1, 10);
        let k2 = StoreKey::new(2, 10);
        let p1 = sample_profile(1);
        let p2 = sample_profile(2);
        {
            let (mut store, replay) = ProfileStore::open(&dir, "fleet-a").unwrap();
            assert!(replay.created);
            assert_eq!(store.put(k1, &p1).unwrap(), 1);
            assert_eq!(store.put(k2, &p2).unwrap(), 1);
            assert_eq!(store.put(k1, &p2).unwrap(), 2, "per-key seq advances");
            let (seq, got) = store.get(k1).unwrap().unwrap();
            assert_eq!(seq, 2);
            assert_eq!(*got, p2);
            // No compaction: crash-shaped exit leaves no index.
        }
        let (mut store, replay) = ProfileStore::open(&dir, "fleet-a").unwrap();
        assert!(!replay.index_used, "no index written yet");
        assert_eq!(replay.records, 2);
        assert_eq!(replay.scanned_records, 3, "full scan sees every frame");
        assert_eq!(replay.quarantined_records, 0);
        assert_eq!(*store.get(k1).unwrap().unwrap().1, p2, "later seq wins");
        assert_eq!(*store.get(k2).unwrap().unwrap().1, p2);
    }

    #[test]
    fn compaction_sorts_reclaims_and_enables_index_fast_path() {
        let dir = tmp_store("compact");
        let keys: Vec<StoreKey> = (0..6).rev().map(|i| StoreKey::new(i, 1)).collect();
        let bytes_after = {
            let (mut store, _) = ProfileStore::open(&dir, "fleet").unwrap();
            for (i, k) in keys.iter().enumerate() {
                store.put(*k, &sample_profile(i as u64)).unwrap();
                store.put(*k, &sample_profile(i as u64 + 10)).unwrap();
            }
            let before = store.data_bytes();
            let report = store.compact().unwrap();
            assert_eq!(report.live_records, 6);
            assert!(report.reclaimed_bytes > 0);
            assert!(store.data_bytes() < before);
            // Reads still work after the rewrite.
            for (i, k) in keys.iter().enumerate() {
                let (seq, p) = store.get(*k).unwrap().unwrap();
                assert_eq!(seq, 2);
                assert_eq!(*p, sample_profile(i as u64 + 10));
            }
            store.data_bytes()
        };
        let (mut store, replay) = ProfileStore::open(&dir, "fleet").unwrap();
        assert!(replay.index_used, "compaction wrote a usable index");
        assert_eq!(replay.records, 6);
        assert_eq!(replay.scanned_records, 0, "no tail to scan");
        assert_eq!(store.data_bytes(), bytes_after);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(*store.get(*k).unwrap().unwrap().1, sample_profile(i as u64 + 10));
        }
    }

    #[test]
    fn compacted_bytes_are_append_order_independent() {
        let dir_a = tmp_store("order-a");
        let dir_b = tmp_store("order-b");
        let keys: Vec<StoreKey> = (0..5).map(|i| StoreKey::new(i, i * 7)).collect();
        let (mut a, _) = ProfileStore::open(&dir_a, "fleet").unwrap();
        let (mut b, _) = ProfileStore::open(&dir_b, "fleet").unwrap();
        for k in &keys {
            a.put(*k, &sample_profile(k.camera)).unwrap();
        }
        for k in keys.iter().rev() {
            b.put(*k, &sample_profile(k.camera)).unwrap();
        }
        a.compact().unwrap();
        b.compact().unwrap();
        assert_eq!(
            std::fs::read(a.data_path()).unwrap(),
            std::fs::read(b.data_path()).unwrap()
        );
        assert_eq!(
            std::fs::read(a.index_path()).unwrap(),
            std::fs::read(b.index_path()).unwrap()
        );
    }

    #[test]
    fn index_tail_scan_recovers_post_compaction_puts() {
        let dir = tmp_store("tail");
        let k_old = StoreKey::new(1, 1);
        let k_new = StoreKey::new(2, 2);
        {
            let (mut store, _) = ProfileStore::open(&dir, "fleet").unwrap();
            store.put(k_old, &sample_profile(1)).unwrap();
            store.compact().unwrap();
            // Post-compaction puts land beyond the index high-water mark.
            store.put(k_new, &sample_profile(2)).unwrap();
            store.put(k_old, &sample_profile(3)).unwrap();
        }
        let (mut store, replay) = ProfileStore::open(&dir, "fleet").unwrap();
        assert!(replay.index_used);
        assert_eq!(replay.scanned_records, 2, "only the tail is scanned");
        assert_eq!(replay.records, 2);
        assert_eq!(*store.get(k_old).unwrap().unwrap().1, sample_profile(3));
        assert_eq!(*store.get(k_new).unwrap().unwrap().1, sample_profile(2));
    }

    #[test]
    fn torn_put_is_quarantined_and_repaired() {
        let dir = tmp_store("torn");
        let acked = StoreKey::new(1, 1);
        {
            let (mut store, _) = ProfileStore::open(&dir, "fleet").unwrap();
            store.put(acked, &sample_profile(1)).unwrap();
            store
                .put_torn(StoreKey::new(2, 2), &sample_profile(2), 0.5)
                .unwrap();
        }
        let before = std::fs::metadata(dir.join(DATA_FILE)).unwrap().len();
        let (mut store, replay) = ProfileStore::open(&dir, "fleet").unwrap();
        assert_eq!(replay.records, 1, "acked write survives");
        assert_eq!(replay.quarantined_records, 1);
        assert!(replay.torn_tail);
        assert!(replay.quarantined_bytes > 0);
        assert!(std::fs::metadata(store.data_path()).unwrap().len() < before);
        assert_eq!(*store.get(acked).unwrap().unwrap().1, sample_profile(1));
        // Further reopen is clean.
        let (_, replay2) = ProfileStore::open(&dir, "fleet").unwrap();
        assert_eq!(replay2.quarantined_records, 0);
        assert_eq!(replay2.records, 1);
    }

    #[test]
    fn bit_rot_in_scan_region_quarantines_suffix() {
        let dir = tmp_store("rot");
        let keys: Vec<StoreKey> = (0..3).map(|i| StoreKey::new(i, 0)).collect();
        let rec_starts: Vec<usize>;
        {
            let (mut store, _) = ProfileStore::open(&dir, "fleet").unwrap();
            let header = data_header_bytes("fleet").len();
            let mut starts = vec![header as u64];
            for k in &keys {
                store.put(*k, &sample_profile(k.camera)).unwrap();
                starts.push(store.data_bytes());
            }
            rec_starts = starts.iter().map(|&b| b as usize).collect();
        }
        // Flip a payload byte in record 1.
        let path = dir.join(DATA_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[rec_starts[1] + REC_HEADER_LEN + 5] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = ProfileStore::open(&dir, "fleet").unwrap();
        assert_eq!(replay.records, 1, "only the prefix before damage survives");
        assert_eq!(replay.quarantined_records, 1);
        assert!(!replay.torn_tail, "bit-rot is not a torn write");
        assert!(replay.quarantined_bytes > 0);
    }

    #[test]
    fn bit_rot_under_index_is_quarantined_lazily_on_get() {
        let dir = tmp_store("lazy");
        let victim = StoreKey::new(1, 1);
        let healthy = StoreKey::new(2, 2);
        let victim_offset;
        {
            let (mut store, _) = ProfileStore::open(&dir, "fleet").unwrap();
            store.put(victim, &sample_profile(1)).unwrap();
            store.put(healthy, &sample_profile(2)).unwrap();
            store.compact().unwrap();
            victim_offset = store.map.get(&victim).unwrap().offset as usize;
        }
        // Rot the victim's payload without touching its record header, so
        // the index cross-check still passes and damage surfaces on read.
        let path = dir.join(DATA_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[victim_offset + 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (mut store, replay) = ProfileStore::open(&dir, "fleet").unwrap();
        assert!(replay.index_used);
        assert_eq!(replay.records, 2);
        assert!(store.get(victim).unwrap().is_none(), "quarantined, not panicked");
        assert_eq!(store.stats().quarantined_records, 1);
        assert!(store.stats().quarantined_bytes > 0);
        assert_eq!(store.len(), 1);
        assert_eq!(*store.get(healthy).unwrap().unwrap().1, sample_profile(2));
    }

    #[test]
    fn damaged_index_degrades_to_full_scan() {
        let dir = tmp_store("badidx");
        let key = StoreKey::new(1, 1);
        {
            let (mut store, _) = ProfileStore::open(&dir, "fleet").unwrap();
            store.put(key, &sample_profile(1)).unwrap();
            store.compact().unwrap();
        }
        let idx = dir.join(INDEX_FILE);
        let mut bytes = std::fs::read(&idx).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&idx, &bytes).unwrap();
        let (mut store, replay) = ProfileStore::open(&dir, "fleet").unwrap();
        assert!(!replay.index_used, "rotted index is ignored");
        assert_eq!(replay.records, 1);
        assert_eq!(replay.scanned_records, 1, "full scan fallback");
        assert_eq!(replay.quarantined_records, 0, "data was never damaged");
        assert_eq!(*store.get(key).unwrap().unwrap().1, sample_profile(1));
    }

    #[test]
    fn foreign_identity_and_zero_byte_file_quarantine_wholesale() {
        let dir = tmp_store("foreign");
        {
            let (mut store, _) = ProfileStore::open(&dir, "fleet-a").unwrap();
            store.put(StoreKey::new(1, 1), &sample_profile(1)).unwrap();
            store.compact().unwrap();
        }
        let (_, replay) = ProfileStore::open(&dir, "fleet-b").unwrap();
        assert_eq!(replay.records, 0);
        assert_eq!(replay.quarantined_records, 1);
        assert!(replay.quarantined_bytes > 0);
        assert!(!dir.join(INDEX_FILE).exists(), "foreign index removed");

        std::fs::write(dir.join(DATA_FILE), b"").unwrap();
        let (_, replay) = ProfileStore::open(&dir, "fleet-b").unwrap();
        assert_eq!(replay.quarantined_records, 1, "crash artifact quarantined");
        let (_, replay2) = ProfileStore::open(&dir, "fleet-b").unwrap();
        assert_eq!(replay2.quarantined_records, 0, "repaired");
    }

    #[test]
    fn read_cache_hits_and_evicts() {
        let dir = tmp_store("cache");
        let (mut store, _) = ProfileStore::open_with_cache(&dir, "fleet", 2).unwrap();
        let keys: Vec<StoreKey> = (0..3).map(|i| StoreKey::new(i, 0)).collect();
        for k in &keys {
            store.put(*k, &sample_profile(k.camera)).unwrap();
        }
        assert!(store.cache.len() <= 2, "eviction bounds the cache");
        // Hot key stays cached; a put-invalidated key misses then re-caches.
        store.get(keys[2]).unwrap().unwrap();
        let hits_before = store.stats().cache_hits;
        store.get(keys[2]).unwrap().unwrap();
        assert_eq!(store.stats().cache_hits, hits_before + 1);
        let misses_before = store.stats().cache_misses;
        store.get(keys[0]).unwrap().unwrap();
        assert_eq!(store.stats().cache_misses, misses_before + 1);
    }

    /// A plan hot enough that faults fire on the small op sets below.
    fn hot_plan() -> DiskFaultPlan {
        DiskFaultPlan::new(0xD15C, 0.6)
    }

    #[test]
    fn faulted_puts_are_unacked_retried_and_leave_no_damage() {
        let dir = tmp_store("diskfault-put");
        let plan = hot_plan();
        let keys: Vec<StoreKey> = (0..24).map(|i| StoreKey::new(i, 1)).collect();
        let mut acked = BTreeMap::new();
        {
            let (mut store, _) =
                ProfileStore::open_with_options(&dir, "fleet", DEFAULT_CACHE_CAP, Some(plan))
                    .unwrap();
            for (i, k) in keys.iter().enumerate() {
                let profile = sample_profile(i as u64);
                // Retry until acked: every attempt rolls a fresh write
                // decision, so the loop converges fast.
                let mut attempts = 0;
                let seq = loop {
                    attempts += 1;
                    assert!(attempts <= 16, "write retries must converge");
                    match store.put(*k, &profile) {
                        Ok(seq) => break seq,
                        Err(e) => assert!(
                            e.to_string().contains("injected disk fault"),
                            "unexpected error {e}"
                        ),
                    }
                };
                assert_eq!(seq, 1, "failed attempts never consume a seq");
                acked.insert(*k, profile);
            }
            assert!(
                store.stats().disk_write_faults > 0,
                "a 60% plan over 24 keys must fire at least once"
            );
            assert_eq!(store.stats().puts, keys.len() as u64);
        }
        // Cold reopen (clean I/O): every acked write is present and no
        // torn garbage survived — the ack is still the durability line.
        let (mut store, replay) = ProfileStore::open(&dir, "fleet").unwrap();
        assert_eq!(replay.quarantined_records, 0, "tails were repaired inline");
        assert_eq!(replay.records, keys.len());
        for (k, p) in &acked {
            assert_eq!(*store.get(*k).unwrap().unwrap().1, *p);
        }
    }

    #[test]
    fn read_fault_quarantines_then_heals_on_retry() {
        let dir = tmp_store("diskfault-read");
        let plan = hot_plan();
        // Find a key whose read stream schedules a bit-flip.
        let victim = (0..200u64)
            .map(|i| StoreKey::new(i, 7))
            .find(|k| plan.read_fault(op_key(*k, 1, 0)).is_some())
            .expect("some key draws a read fault at 60%");
        let heals_after = match plan.read_fault(op_key(victim, 1, 0)) {
            Some(DiskFaultKind::ReadBitFlip { heals_after }) => heals_after,
            other => panic!("read stream scheduled {other:?}"),
        };
        // cache_cap 0: every get goes to disk, so the read seam is hot.
        let (mut store, _) =
            ProfileStore::open_with_options(&dir, "fleet", 0, Some(plan)).unwrap();
        let profile = sample_profile(3);
        // The 60% plan arms the write stream too; retry until acked.
        while store.put(victim, &profile).is_err() {}
        store.cache.clear(); // the put primed the cache; force disk reads

        // Attempts 1..=heals_after corrupt the buffer: first one
        // quarantines, later ones are failed repairs.
        for attempt in 1..=heals_after {
            match store.get_outcome(victim).unwrap() {
                GetOutcome::Quarantined => {}
                other => panic!("attempt {attempt}: expected quarantine, got {other:?}"),
            }
        }
        assert_eq!(store.stats().quarantined_records, 1);
        assert_eq!(store.quarantine_pending(), 1);
        assert_eq!(store.len(), 0, "quarantined record leaves the live map");
        assert_eq!(store.seq(victim), 1, "but keeps owning its seq");

        // The next read heals: the get itself repairs and serves.
        match store.get_outcome(victim).unwrap() {
            GetOutcome::Hit { seq, profile: got } => {
                assert_eq!(seq, 1);
                assert_eq!(*got, profile);
            }
            other => panic!("expected healed hit, got {other:?}"),
        }
        assert_eq!(store.quarantine_pending(), 0);
        assert_eq!(store.stats().repaired_records, 1);
        assert_eq!(store.stats().disk_read_faults, heals_after as u64);
        // Healed stays healed.
        assert!(matches!(
            store.get_outcome(victim).unwrap(),
            GetOutcome::Hit { .. }
        ));
    }

    #[test]
    fn scrub_pass_verifies_quarantines_and_repairs() {
        let dir = tmp_store("scrub");
        let plan = hot_plan();
        let keys: Vec<StoreKey> = (0..12).map(|i| StoreKey::new(i, 9)).collect();
        let (mut store, _) =
            ProfileStore::open_with_options(&dir, "fleet", 0, Some(plan)).unwrap();
        for k in &keys {
            // Clean writes: arm only the read stream's trouble by
            // retrying faulted appends.
            while store.put(*k, &sample_profile(k.camera)).is_err() {}
        }
        // Drive scrub passes until the quarantine drains: pass 1 flips
        // some buffers (quarantine-with-counts), later passes heal them.
        let mut passes = 0;
        loop {
            passes += 1;
            assert!(passes <= 6, "scrub must converge");
            let report = store.scrub_pass().unwrap();
            assert!(report.wrapped);
            if report.unrepaired == 0 && report.quarantined == 0 {
                break;
            }
        }
        assert_eq!(store.len(), keys.len(), "every record restored");
        assert_eq!(store.quarantine_pending(), 0);
        assert!(store.stats().scrub_passes >= 1);
        assert!(store.stats().scrubbed_records > 0);
        // The store is wholly servable again.
        for k in &keys {
            assert_eq!(*store.get(*k).unwrap().unwrap().1, sample_profile(k.camera));
        }
    }

    #[test]
    fn scrub_log_fallback_restores_earlier_version_of_rotted_record() {
        let dir = tmp_store("scrub-log");
        let key = StoreKey::new(5, 5);
        let other = StoreKey::new(6, 6);
        let v1 = sample_profile(1);
        let v2 = sample_profile(2);
        let rot_offset;
        {
            let (mut store, _) = ProfileStore::open(&dir, "fleet").unwrap();
            store.put(key, &v1).unwrap();
            store.put(other, &sample_profile(9)).unwrap();
            store.put(key, &v2).unwrap(); // newest version, about to rot
            rot_offset = store.map.get(&key).unwrap().offset as usize;
            // Persist the index: record headers stay trusted on reopen,
            // so the rotted payload reaches the live map instead of the
            // tail-truncating full-scan recovery path.
            store.write_index().unwrap();
        }
        // Real rot: flip a payload byte of the newest version on disk.
        let path = dir.join(DATA_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[rot_offset + 2] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let (mut store, _) = ProfileStore::open(&dir, "fleet").unwrap();
        assert!(store.get(key).unwrap().is_none(), "rot quarantines");
        // Scrub: direct re-reads keep failing (the disk really is rotten)
        // until the log fallback finds the intact seq-1 frame, restores
        // it, and compacts the damaged frame out of the file.
        let mut report = ScrubReport::default();
        for _ in 0..4 {
            report.absorb(store.scrub_step(64).unwrap());
            if report.unrepaired == 0 {
                break;
            }
        }
        assert_eq!(report.unrepaired, 0, "log fallback must restore seq 1");
        assert!(report.repaired >= 1);
        let (seq, got) = store.get(key).unwrap().unwrap();
        assert_eq!(seq, 1, "the intact earlier version is served");
        assert_eq!(*got, v1);
        assert!(store.stats().compactions >= 1, "log repair forces compaction");
        // After the forced compaction a cold reopen is fully clean — the
        // damaged frame cannot strand a future crash-recovery scan.
        drop(store);
        let (mut store, replay) = ProfileStore::open(&dir, "fleet").unwrap();
        assert_eq!(replay.quarantined_records, 0);
        assert_eq!(replay.records, 2);
        assert_eq!(*store.get(key).unwrap().unwrap().1, v1);
        assert_eq!(*store.get(other).unwrap().unwrap().1, sample_profile(9));
    }

    #[test]
    fn put_supersedes_quarantined_record_and_seq_stays_monotone() {
        let dir = tmp_store("supersede");
        let key = StoreKey::new(3, 3);
        let offset;
        {
            let (mut store, _) = ProfileStore::open(&dir, "fleet").unwrap();
            store.put(key, &sample_profile(1)).unwrap();
            store.put(key, &sample_profile(2)).unwrap();
            offset = store.map.get(&key).unwrap().offset as usize;
            store.write_index().unwrap(); // keep headers index-trusted on reopen
        }
        let path = dir.join(DATA_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[offset] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();
        let (mut store, _) = ProfileStore::open(&dir, "fleet").unwrap();
        assert!(store.get(key).unwrap().is_none());
        assert_eq!(store.quarantine_pending(), 1);
        // A fresh put repairs by superseding — and must not rewind seq.
        let seq = store.put(key, &sample_profile(7)).unwrap();
        assert_eq!(seq, 3, "seq continues past the quarantined record");
        assert_eq!(store.quarantine_pending(), 0);
        assert_eq!(store.stats().repaired_records, 1);
        assert_eq!(*store.get(key).unwrap().unwrap().1, sample_profile(7));
    }

    #[test]
    fn zero_rate_fault_plan_is_byte_invisible() {
        let dir_clean = tmp_store("inert-clean");
        let dir_armed = tmp_store("inert-armed");
        let zero = DiskFaultPlan::new(99, 0.0);
        let keys: Vec<StoreKey> = (0..5).map(|i| StoreKey::new(i, 2)).collect();
        let (mut a, _) = ProfileStore::open(&dir_clean, "fleet").unwrap();
        let (mut b, _) =
            ProfileStore::open_with_options(&dir_armed, "fleet", DEFAULT_CACHE_CAP, Some(zero))
                .unwrap();
        for k in &keys {
            a.put(*k, &sample_profile(k.camera)).unwrap();
            b.put(*k, &sample_profile(k.camera)).unwrap();
            a.get(*k).unwrap().unwrap();
            b.get(*k).unwrap().unwrap();
        }
        a.scrub_pass().unwrap();
        b.scrub_pass().unwrap();
        a.compact().unwrap();
        b.compact().unwrap();
        assert_eq!(
            std::fs::read(a.data_path()).unwrap(),
            std::fs::read(b.data_path()).unwrap()
        );
        assert_eq!(
            std::fs::read(a.index_path()).unwrap(),
            std::fs::read(b.index_path()).unwrap()
        );
        assert_eq!(b.stats().disk_write_faults, 0);
        assert_eq!(b.stats().disk_read_faults, 0);
    }

    #[test]
    fn grid_id_is_stable_and_discriminates() {
        let a = sample_profile(1);
        let mut b = a.clone();
        assert_eq!(grid_id(&a), grid_id(&b));
        b.model = "different".into();
        assert_ne!(grid_id(&a), grid_id(&b));
    }
}
