//! `serve` — the profile-serving daemon binary.
//!
//! ```text
//! serve run --unix PATH | --tcp HOST:PORT  --store DIR
//!           [--threads N] [--queue-cap N] [--identity S]
//! serve check --store DIR [--identity S]
//! ```
//!
//! `run` opens (or creates) the profile store under `--store`, binds the
//! listener, prints the resolved address (`listening on ...`), and serves
//! until a client sends `shutdown` — then flushes, compacts, and prints a
//! final report. `check` opens the store read-only-ish (a replay, no
//! serving), prints what recovery found, and exits 1 if any record was
//! quarantined — the zero-data-loss gate `ci.sh` runs after a daemon
//! cycle. Exit codes: 0 ok, 1 quarantined records (check) or serve
//! failure, 2 usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use smokescreen_serve::{ProfileStore, ServeAddr, Server, ServerConfig};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: serve run --unix PATH|--tcp HOST:PORT --store DIR \
         [--threads N] [--queue-cap N] [--identity S]\n       \
         serve check --store DIR [--identity S]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        _ => usage(),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let addr = match (flag_value(args, "--unix"), flag_value(args, "--tcp")) {
        (Some(path), None) => ServeAddr::Unix(PathBuf::from(path)),
        (None, Some(spec)) => ServeAddr::Tcp(spec),
        _ => return usage(),
    };
    let Some(store_dir) = flag_value(args, "--store") else {
        return usage();
    };
    let mut config = ServerConfig::new(addr, store_dir);
    if let Some(threads) = flag_value(args, "--threads").and_then(|t| t.parse().ok()) {
        config = config.with_threads(threads);
    }
    if let Some(cap) = flag_value(args, "--queue-cap").and_then(|c| c.parse().ok()) {
        config = config.with_queue_cap(cap);
    }
    if let Some(identity) = flag_value(args, "--identity") {
        config = config.with_identity(identity);
    }

    let running = match Server::new(config).spawn() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::from(1);
        }
    };
    println!("listening on {}", running.addr());
    match running.join() {
        Ok(report) => {
            println!(
                "serve: stopped ({}) — {} requests over {} connections, {} live records, \
                 {} quarantined",
                if report.graceful { "graceful" } else { "killed" },
                report.stats.requests,
                report.stats.connections,
                report.stats.live_records,
                report.stats.quarantined_records,
            );
            if let Some(compaction) = report.compaction {
                println!(
                    "serve: compacted {} records, reclaimed {} bytes",
                    compaction.live_records, compaction.reclaimed_bytes
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let Some(store_dir) = flag_value(args, "--store") else {
        return usage();
    };
    let identity = flag_value(args, "--identity").unwrap_or_else(|| "smokescreen-serve".into());
    match ProfileStore::open(PathBuf::from(&store_dir).as_path(), &identity) {
        Ok((store, replay)) => {
            println!(
                "check: {} live records, {} bytes, index_used={} scanned={} \
                 quarantined={} ({} bytes) torn_tail={}",
                store.len(),
                store.data_bytes(),
                replay.index_used,
                replay.scanned_records,
                replay.quarantined_records,
                replay.quarantined_bytes,
                replay.torn_tail,
            );
            if replay.quarantined_records > 0 {
                eprintln!(
                    "check: {} records quarantined — acked data was lost or damaged",
                    replay.quarantined_records
                );
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("check: {store_dir}: {e}");
            ExitCode::from(1)
        }
    }
}
