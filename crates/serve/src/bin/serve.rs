//! `serve` — the profile-serving daemon binary.
//!
//! ```text
//! serve run --unix PATH | --tcp HOST:PORT  --store DIR
//!           [--threads N] [--queue-cap N] [--identity S]
//!           [--cache-cap N] [--scrub-batch N]
//!           [--supervise] [--crash-after N]
//! serve check --store DIR [--identity S] [--scrub]
//! ```
//!
//! `run` opens (or creates) the profile store under `--store`, binds the
//! listener, prints the resolved address (`listening on ...`), and serves
//! until a client sends `shutdown` — then flushes, compacts, and prints a
//! final report. Fault plans arm from the environment
//! (`SMOKESCREEN_DISKFAULT_*` / `SMOKESCREEN_NETFAULT_*`); with no
//! variables set the daemon runs clean.
//!
//! `--supervise` keeps the process alive across crashed generations: any
//! non-graceful worker-loop exit (including one forced by
//! `--crash-after N`, which kills the first generation after its Nth
//! answered request) restarts the daemon on the same store and socket.
//! Acked writes survive the restart — the store's ack-is-durability
//! contract is exactly what the supervisor leans on. A graceful
//! `shutdown` still ends the process.
//!
//! `check` opens the store read-only-ish (a replay, no serving), prints
//! what recovery found, and exits 1 if any record was quarantined — the
//! zero-data-loss gate `ci.sh` runs after a daemon cycle. With `--scrub`
//! it additionally runs full scrub passes until the quarantine backlog
//! drains (bounded), and gates on zero unrepaired records.
//! Exit codes: 0 ok, 1 quarantined/unrepaired records (check) or serve
//! failure, 2 usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use smokescreen_serve::{ProfileStore, ServeAddr, Server, ServerConfig, ServerReport};

/// Most full scrub passes `check --scrub` runs before declaring the
/// backlog stuck. Direct repair retries escalate to log re-fetch after
/// two failures, so a repairable store always drains well within this.
const CHECK_SCRUB_PASSES: usize = 8;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: serve run --unix PATH|--tcp HOST:PORT --store DIR \
         [--threads N] [--queue-cap N] [--identity S] [--cache-cap N] \
         [--scrub-batch N] [--supervise] [--crash-after N]\n       \
         serve check --store DIR [--identity S] [--scrub]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        _ => usage(),
    }
}

fn print_report(generation: u64, report: &ServerReport) {
    println!(
        "serve: generation {generation} stopped ({}) — {} requests over {} connections, \
         {} live records, {} quarantined",
        if report.graceful { "graceful" } else { "killed" },
        report.stats.requests,
        report.stats.connections,
        report.stats.live_records,
        report.stats.quarantined_records,
    );
    if report.stats.deduped_puts + report.stats.net_faults + report.stats.disk_write_faults > 0 {
        println!(
            "serve: chaos — {} net faults, {} disk write faults, {} disk read faults, \
             {} deduped puts, {} repaired records",
            report.stats.net_faults,
            report.stats.disk_write_faults,
            report.stats.disk_read_faults,
            report.stats.deduped_puts,
            report.stats.repaired_records,
        );
    }
    if let Some(compaction) = &report.compaction {
        println!(
            "serve: compacted {} records, reclaimed {} bytes",
            compaction.live_records, compaction.reclaimed_bytes
        );
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let addr = match (flag_value(args, "--unix"), flag_value(args, "--tcp")) {
        (Some(path), None) => ServeAddr::Unix(PathBuf::from(path)),
        (None, Some(spec)) => ServeAddr::Tcp(spec),
        _ => return usage(),
    };
    let Some(store_dir) = flag_value(args, "--store") else {
        return usage();
    };
    let mut config = ServerConfig::new(addr, store_dir);
    if let Some(threads) = flag_value(args, "--threads").and_then(|t| t.parse().ok()) {
        config = config.with_threads(threads);
    }
    if let Some(cap) = flag_value(args, "--queue-cap").and_then(|c| c.parse().ok()) {
        config = config.with_queue_cap(cap);
    }
    if let Some(identity) = flag_value(args, "--identity") {
        config = config.with_identity(identity);
    }
    if let Some(cap) = flag_value(args, "--cache-cap").and_then(|c| c.parse().ok()) {
        config = config.with_cache_cap(cap);
    }
    if let Some(batch) = flag_value(args, "--scrub-batch").and_then(|b| b.parse().ok()) {
        config = config.with_scrub_batch(batch);
    }
    let supervise = has_flag(args, "--supervise");
    let crash_after: Option<u64> = flag_value(args, "--crash-after").and_then(|n| n.parse().ok());

    let mut generation: u64 = 0;
    loop {
        generation += 1;
        // The crash counter arms the first generation only: the point of
        // `--supervise --crash-after N` is to demonstrate one induced
        // crash and a clean successor, not a crash loop.
        let gen_config = if generation == 1 {
            config.clone().with_crash_after(crash_after)
        } else {
            config.clone()
        };
        let running = match Server::new(gen_config).spawn() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("serve: generation {generation}: {e}");
                return ExitCode::from(1);
            }
        };
        if generation == 1 {
            println!("listening on {}", running.addr());
        } else {
            println!("serve: generation {generation} listening on {}", running.addr());
        }
        match running.join() {
            Ok(report) => {
                print_report(generation, &report);
                if report.graceful || !supervise {
                    return ExitCode::SUCCESS;
                }
                println!("serve: generation {generation} died without a shutdown; restarting");
            }
            Err(e) => {
                eprintln!("serve: generation {generation}: {e}");
                if !supervise {
                    return ExitCode::from(1);
                }
            }
        }
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let Some(store_dir) = flag_value(args, "--store") else {
        return usage();
    };
    let identity = flag_value(args, "--identity").unwrap_or_else(|| "smokescreen-serve".into());
    match ProfileStore::open(PathBuf::from(&store_dir).as_path(), &identity) {
        Ok((mut store, replay)) => {
            println!(
                "check: {} live records, {} bytes, index_used={} scanned={} \
                 quarantined={} ({} bytes) torn_tail={}",
                store.len(),
                store.data_bytes(),
                replay.index_used,
                replay.scanned_records,
                replay.quarantined_records,
                replay.quarantined_bytes,
                replay.torn_tail,
            );
            if has_flag(args, "--scrub") {
                for pass in 1..=CHECK_SCRUB_PASSES {
                    match store.scrub_pass() {
                        Ok(report) => {
                            println!(
                                "check: scrub pass {pass} — scanned {} verified {} \
                                 repaired {} quarantined {} unrepaired {}",
                                report.scanned,
                                report.verified,
                                report.repaired,
                                report.quarantined,
                                report.unrepaired,
                            );
                            if report.unrepaired == 0 {
                                break;
                            }
                        }
                        Err(e) => {
                            eprintln!("check: scrub pass {pass}: {e}");
                            return ExitCode::from(1);
                        }
                    }
                }
                if store.quarantine_pending() > 0 {
                    eprintln!(
                        "check: {} records still quarantined after {CHECK_SCRUB_PASSES} \
                         scrub passes — unrepairable damage",
                        store.quarantine_pending()
                    );
                    return ExitCode::from(1);
                }
                // The scrub drained every quarantined record, so damage
                // the replay saw has been repaired — the gate is zero
                // *unrepaired* quarantine, not zero history.
                return ExitCode::SUCCESS;
            }
            if replay.quarantined_records > 0 {
                eprintln!(
                    "check: {} records quarantined — acked data was lost or damaged",
                    replay.quarantined_records
                );
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("check: {store_dir}: {e}");
            ExitCode::from(1)
        }
    }
}
