//! The serving daemon: thread-per-core workers on the persistent
//! `rt::pool`, fed by one acceptor task through a **bounded admission
//! queue**.
//!
//! Topology: a [`Server`] binds a Unix or TCP listener, opens the
//! [`ProfileStore`], and runs `workers + 1` long-lived tasks on one
//! `rt::pool` scope — task 0 polls the listener (non-blocking accept,
//! 1 ms poll) and every other task owns one connection at a time. A
//! connection accepted while the queue is at capacity gets a typed
//! [`ErrorCode::Overloaded`] response and is closed: overload is an
//! explicit, observable rejection, never an unbounded backlog.
//!
//! Shutdown has two flavors, mirroring the store's durability story:
//!
//! * **graceful** (a `shutdown` request, or [`RunningServer::shutdown`]):
//!   the acceptor stops, workers drain queued connections and close idle
//!   ones at the next frame boundary, then the store is flushed and
//!   **compacted** — a clean stop always leaves the canonical key-ordered
//!   on-disk layout, which is what makes soak-test stores byte-comparable
//!   across thread counts.
//! * **kill** ([`RunningServer::kill`]): a simulated crash. Workers drop
//!   connections at the next frame boundary and no compaction runs; every
//!   acked put is already durable (`sync_data` before the `ok` frame), so
//!   a reopen recovers all acknowledged writes by scan or index replay.
//!
//! Freshness (the `core::streaming` seam): each key may grow a
//! [`FreshnessMonitor`] from outputs pushed via `push_outputs`. The first
//! pushes accumulate until two full windows establish a drift baseline;
//! later pushes are scored, and `get_profile` responses carry the
//! resulting [`DriftStatus`] so a stale profile is visible at read time.
//! A latched staleness signal enqueues the key in the **repair queue**
//! (listed by `stats`); a fresh `put_profile` for a queued key is the
//! repair — it dequeues the key and retires the exhausted monitor, so
//! drift → detect → flag → re-profile is one observable loop.
//!
//! Chaos (the `rt::fault` seam): an armed [`NetFaultPlan`] drops,
//! delays, garbles, or resets request frames that carry a client-stamped
//! rid — a pure function of the rid, so a chaos run is replayable
//! bit-for-bit. Disk faults live one layer down in the store; both are
//! inert unless armed (default: the `SMOKESCREEN_{DISK,NET}FAULT_*` env
//! knobs). A background **scrubber** task walks the store on a short
//! cadence, re-verifying checksums and repairing quarantined records,
//! and `get_profile` keeps answering while a quarantine is pending —
//! with the typed `degraded` flag set, degradation made intentional.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use smokescreen_camera::cost::{transmission_cost, EnergyModel};
use smokescreen_core::{
    FreshnessMonitor, ProfilePoint, DEFAULT_DRIFT_THRESHOLD, DEFAULT_DRIFT_WINDOW,
};
use smokescreen_rt::fault::{DiskFaultPlan, NetFaultKind, NetFaultPlan};
use smokescreen_rt::json::Json;
use smokescreen_rt::pool::Pool;
use smokescreen_video::Resolution;

use crate::protocol::{
    frame_rid, read_frame, write_frame, DriftStatus, ErrorCode, FrameError, Request, Response,
    ServerStats, REPAIR_QUEUE_LIST_CAP,
};
use crate::store::{
    CompactionReport, GetOutcome, ProfileStore, StoreKey, StoreReplay, DEFAULT_CACHE_CAP,
};

/// Server-side read timeout: the cadence at which an idle connection's
/// worker polls the shutdown flag (see [`FrameError::Idle`]).
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Server-side write timeout: a peer that stops reading cannot pin a
/// worker forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// Acceptor poll interval while the listener has no pending connection.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// How long a worker parks on the admission queue before re-checking the
/// shutdown flags.
const QUEUE_WAIT: Duration = Duration::from_millis(20);

/// Default admission-queue capacity (connections waiting for a worker).
pub const DEFAULT_QUEUE_CAP: usize = 64;

/// Background scrubber cadence: how long the scrubber task sleeps
/// between incremental verify/repair steps.
const SCRUB_INTERVAL: Duration = Duration::from_millis(5);

/// Default live records verified per background scrub step.
pub const DEFAULT_SCRUB_BATCH: usize = 16;

/// Canonical costing window for `query_tradeoff` budgets: cost budgets
/// are judged on shipping this many captured frames (≈ half a minute at
/// 30 fps), so `max_bytes` / `max_energy_j` thresholds are comparable
/// across cameras and profiles.
pub const COST_WINDOW_FRAMES: usize = 1000;

/// Native capture resolution assumed when an intervention leaves
/// resolution untouched (the detector-native 608×608 used throughout the
/// eval pipeline).
pub const COST_NATIVE_RES: u32 = 608;

/// Where a server listens (and where clients connect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAddr {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address (`"host:port"`; port 0 picks a free port, and the
    /// resolved address is reported by [`RunningServer::addr`]).
    Tcp(String),
}

impl ServeAddr {
    /// Connects a client to this address.
    pub fn connect(&self) -> io::Result<Connection> {
        let stream = match self {
            ServeAddr::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
            ServeAddr::Tcp(addr) => Stream::Tcp(TcpStream::connect(addr.as_str())?),
        };
        Ok(Connection { stream })
    }
}

impl std::fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAddr::Unix(path) => write!(f, "unix:{}", path.display()),
            ServeAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// One transport stream, Unix or TCP, behind a common `Read`/`Write`.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    /// Server-side setup for a freshly accepted stream: blocking mode
    /// (the listener is non-blocking and that can be inherited), a short
    /// read timeout for shutdown polling, and a bounded write timeout.
    fn configure_server(&self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(READ_TIMEOUT))?;
                s.set_write_timeout(Some(WRITE_TIMEOUT))
            }
            Stream::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(READ_TIMEOUT))?;
                s.set_write_timeout(Some(WRITE_TIMEOUT))
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A client connection: blocking reads (no timeout — the server answers
/// every frame), with framed request/response helpers on top.
pub struct Connection {
    stream: Stream,
}

impl Connection {
    /// Connects to a serving address. Alias for [`ServeAddr::connect`].
    pub fn open(addr: &ServeAddr) -> io::Result<Connection> {
        addr.connect()
    }

    /// Sends one request frame.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, &request.to_json())
    }

    /// Receives one response frame.
    pub fn receive(&mut self) -> Result<Response, String> {
        match read_frame(&mut self.stream) {
            Ok(Some(json)) => Response::from_json(&json),
            Ok(None) => Err("server closed the connection".into()),
            Err(FrameError::Io(e)) => Err(format!("transport error: {e}")),
            Err(e) => Err(format!("frame error: {e:?}")),
        }
    }

    /// Round trip: send a request, wait for its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        self.send(request).map_err(|e| e.to_string())?;
        self.receive()
    }

    /// Sets a client-side read deadline. With a deadline armed,
    /// `read_frame` on this connection reports [`FrameError::Idle`] when
    /// no response arrives in time — the hook fault-tolerant clients use
    /// to abandon a dropped response and retry. `None` restores blocking
    /// reads.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match &self.stream {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for Connection {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }
}

impl Write for Connection {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    /// Binds the address; for TCP the returned address carries the
    /// resolved port (so `"127.0.0.1:0"` becomes connectable).
    fn bind(addr: &ServeAddr) -> io::Result<(Listener, ServeAddr)> {
        match addr {
            ServeAddr::Unix(path) => {
                // A previous unclean stop can leave a stale socket file;
                // binding over it is the expected recovery.
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Ok((
                    Listener::Unix(UnixListener::bind(path)?),
                    ServeAddr::Unix(path.clone()),
                ))
            }
            ServeAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec.as_str())?;
                let resolved = ServeAddr::Tcp(listener.local_addr()?.to_string());
                Ok((Listener::Tcp(listener), resolved))
            }
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address.
    pub addr: ServeAddr,
    /// Profile-store directory.
    pub store_dir: PathBuf,
    /// Store identity string (a foreign identity quarantines wholesale).
    pub identity: String,
    /// Worker tasks; `0` means the pool's automatic width. The acceptor
    /// runs as one extra task on top of this count.
    pub threads: usize,
    /// Admission-queue capacity. `0` rejects every connection — useful
    /// for testing the overload path.
    pub queue_cap: usize,
    /// Drift-monitor window (outputs per scored window).
    pub drift_window: usize,
    /// Drift score threshold for flagging a window.
    pub drift_threshold: f64,
    /// Read-cache capacity for the store.
    pub cache_cap: usize,
    /// Disk-fault plan injected behind the store's I/O seams. Defaults
    /// to [`DiskFaultPlan::from_env`] (inert unless the
    /// `SMOKESCREEN_DISKFAULT_*` knobs arm it).
    pub disk_faults: Option<DiskFaultPlan>,
    /// Net-fault plan applied to rid-stamped request frames. Defaults to
    /// [`NetFaultPlan::from_env`] (`SMOKESCREEN_NETFAULT_*`).
    pub net_faults: Option<NetFaultPlan>,
    /// Live records verified per background scrub step (`0` disables the
    /// background scrubber; wire `scrub` requests still work).
    pub scrub_batch: usize,
    /// Self-crash after answering this many requests (the supervisor
    /// restart path exercised by `serve run --crash-after`): the kill
    /// flag trips exactly as [`RunningServer::kill`] would, so no
    /// compaction runs and acked writes must survive the reopen.
    pub crash_after: Option<u64>,
}

impl ServerConfig {
    /// A config with defaults: automatic thread count, queue capacity
    /// [`DEFAULT_QUEUE_CAP`], and the `core::similarity` drift defaults.
    pub fn new(addr: ServeAddr, store_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr,
            store_dir: store_dir.into(),
            identity: "smokescreen-serve".into(),
            threads: 0,
            queue_cap: DEFAULT_QUEUE_CAP,
            drift_window: DEFAULT_DRIFT_WINDOW,
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
            cache_cap: DEFAULT_CACHE_CAP,
            disk_faults: DiskFaultPlan::from_env(),
            net_faults: NetFaultPlan::from_env(),
            scrub_batch: DEFAULT_SCRUB_BATCH,
            crash_after: None,
        }
    }

    /// Sets the worker count (`0` = automatic).
    pub fn with_threads(mut self, threads: usize) -> ServerConfig {
        self.threads = threads;
        self
    }

    /// Sets the admission-queue capacity.
    pub fn with_queue_cap(mut self, cap: usize) -> ServerConfig {
        self.queue_cap = cap;
        self
    }

    /// Sets the store identity.
    pub fn with_identity(mut self, identity: impl Into<String>) -> ServerConfig {
        self.identity = identity.into();
        self
    }

    /// Sets the drift-monitor window and threshold.
    pub fn with_drift(mut self, window: usize, threshold: f64) -> ServerConfig {
        self.drift_window = window;
        self.drift_threshold = threshold;
        self
    }

    /// Sets the store read-cache capacity.
    pub fn with_cache_cap(mut self, cap: usize) -> ServerConfig {
        self.cache_cap = cap;
        self
    }

    /// Overrides the disk-fault plan (in-process chaos without env).
    pub fn with_disk_faults(mut self, plan: Option<DiskFaultPlan>) -> ServerConfig {
        self.disk_faults = plan;
        self
    }

    /// Overrides the net-fault plan (in-process chaos without env).
    pub fn with_net_faults(mut self, plan: Option<NetFaultPlan>) -> ServerConfig {
        self.net_faults = plan;
        self
    }

    /// Sets the background scrub batch size (`0` disables the task).
    pub fn with_scrub_batch(mut self, batch: usize) -> ServerConfig {
        self.scrub_batch = batch;
        self
    }

    /// Arms the self-crash counter.
    pub fn with_crash_after(mut self, requests: Option<u64>) -> ServerConfig {
        self.crash_after = requests;
        self
    }
}

/// What a finished server run accomplished.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// What opening the store recovered.
    pub replay: StoreReplay,
    /// Final counter snapshot.
    pub stats: ServerStats,
    /// The shutdown compaction (`None` after a kill).
    pub compaction: Option<CompactionReport>,
    /// Whether the stop was graceful (flush + compact) or a kill.
    pub graceful: bool,
}

/// Per-key freshness state: outputs accumulate until a baseline exists,
/// then a live monitor scores every subsequent window.
#[derive(Default)]
struct MonitorSlot {
    pending: Vec<f64>,
    monitor: Option<FreshnessMonitor>,
}

impl MonitorSlot {
    /// Feeds outputs; returns the scored-window count (0 while the
    /// baseline is still accumulating).
    fn push(&mut self, outputs: &[f64], window: usize, threshold: f64) -> u64 {
        match &mut self.monitor {
            Some(monitor) => monitor.extend(outputs),
            None => {
                self.pending.extend_from_slice(outputs);
                if let Some(monitor) =
                    FreshnessMonitor::from_outputs(&self.pending, window, threshold)
                {
                    self.pending = Vec::new();
                    self.monitor = Some(monitor);
                }
            }
        }
        self.monitor
            .as_ref()
            .map_or(0, |m| m.report().windows_scored as u64)
    }

    fn status(&self) -> Option<DriftStatus> {
        self.monitor.as_ref().map(|monitor| {
            let report = monitor.report();
            DriftStatus {
                score: report.max_score,
                windows_scored: report.windows_scored as u64,
                windows_flagged: report.windows_flagged as u64,
                stale: monitor.stale(),
                widen: monitor.widening_factor(),
            }
        })
    }

    fn stale(&self) -> bool {
        self.monitor.as_ref().is_some_and(FreshnessMonitor::stale)
    }
}

/// Mutable server state: the store plus the per-key drift monitors. One
/// lock serializes both — the store is single-writer by contract, and
/// keeping monitors under the same lock makes `get_profile` freshness
/// reads consistent with concurrent `push_outputs`.
struct State {
    store: ProfileStore,
    monitors: BTreeMap<StoreKey, MonitorSlot>,
    /// Keys flagged for re-profiling: a latched drift staleness observed
    /// at serve or push time enqueues; a fresh put dequeues (the repair).
    repair_queue: BTreeSet<StoreKey>,
}

/// Everything the acceptor, workers, and [`RunningServer`] handle share.
struct Shared {
    state: Mutex<State>,
    queue: Mutex<VecDeque<Stream>>,
    queue_ready: Condvar,
    queue_cap: usize,
    /// Graceful drain requested.
    stop: AtomicBool,
    /// Simulated crash requested.
    kill: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
    overload_rejections: AtomicU64,
    protocol_errors: AtomicU64,
    deduped_puts: AtomicU64,
    net_faults: AtomicU64,
    degraded_answers: AtomicU64,
    drift_window: usize,
    drift_threshold: f64,
    net_plan: Option<NetFaultPlan>,
    scrub_batch: usize,
    crash_after: Option<u64>,
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || self.kill.load(Ordering::SeqCst)
    }

    /// Assembles a [`ServerStats`] snapshot (takes the state lock).
    fn snapshot(&self) -> ServerStats {
        let state = lock(&self.state);
        let store_stats = state.store.stats();
        let drift_monitors = state
            .monitors
            .values()
            .filter(|slot| slot.monitor.is_some())
            .count() as u64;
        let stale_monitors = state
            .monitors
            .values()
            .filter(|slot| slot.monitor.as_ref().is_some_and(|m| m.stale()))
            .count() as u64;
        let repair_queue: Vec<String> = state
            .repair_queue
            .iter()
            .take(REPAIR_QUEUE_LIST_CAP)
            .map(|k| format!("{:016x}:{:016x}", k.camera, k.grid))
            .collect();
        ServerStats {
            connections: self.connections.load(Ordering::SeqCst),
            requests: self.requests.load(Ordering::SeqCst),
            overload_rejections: self.overload_rejections.load(Ordering::SeqCst),
            protocol_errors: self.protocol_errors.load(Ordering::SeqCst),
            live_records: state.store.len() as u64,
            data_bytes: state.store.data_bytes(),
            puts: store_stats.puts,
            gets: store_stats.gets,
            cache_hits: store_stats.cache_hits,
            cache_misses: store_stats.cache_misses,
            quarantined_records: store_stats.quarantined_records,
            compactions: store_stats.compactions,
            drift_monitors,
            stale_monitors,
            deduped_puts: self.deduped_puts.load(Ordering::SeqCst),
            disk_write_faults: store_stats.disk_write_faults,
            disk_read_faults: store_stats.disk_read_faults,
            net_faults: self.net_faults.load(Ordering::SeqCst),
            tail_repairs: store_stats.tail_repairs,
            repaired_records: store_stats.repaired_records,
            scrubbed_records: store_stats.scrubbed_records,
            scrub_passes: store_stats.scrub_passes,
            quarantine_pending: state.store.quarantine_pending() as u64,
            degraded_answers: self.degraded_answers.load(Ordering::SeqCst),
            repair_queue_len: state.repair_queue.len() as u64,
            repair_queue,
        }
    }
}

/// A configured server, ready to [`run`](Server::run) on the calling
/// thread or [`spawn`](Server::spawn) in the background.
pub struct Server {
    config: ServerConfig,
}

impl Server {
    /// Wraps a configuration.
    pub fn new(config: ServerConfig) -> Server {
        Server { config }
    }

    /// Binds, serves, and blocks until shutdown. Used by the `serve` bin.
    pub fn run(self) -> io::Result<ServerReport> {
        Boot::bind(self.config)?.serve()
    }

    /// Binds on the calling thread (so bind errors surface immediately
    /// and the resolved address is known), then serves on a background
    /// thread controlled through the returned handle.
    pub fn spawn(self) -> io::Result<RunningServer> {
        let boot = Boot::bind(self.config)?;
        let addr = boot.addr.clone();
        let shared = Arc::clone(&boot.shared);
        let handle = std::thread::Builder::new()
            .name("smokescreen-serve".into())
            .spawn(move || boot.serve())?;
        Ok(RunningServer {
            addr,
            shared,
            handle,
        })
    }
}

/// A server bound and ready: listener + opened store.
struct Boot {
    listener: Listener,
    addr: ServeAddr,
    shared: Arc<Shared>,
    replay: StoreReplay,
    config: ServerConfig,
}

impl Boot {
    fn bind(config: ServerConfig) -> io::Result<Boot> {
        let (store, replay) = ProfileStore::open_with_options(
            &config.store_dir,
            &config.identity,
            config.cache_cap,
            config.disk_faults,
        )?;
        let (listener, addr) = Listener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                store,
                monitors: BTreeMap::new(),
                repair_queue: BTreeSet::new(),
            }),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            queue_cap: config.queue_cap,
            stop: AtomicBool::new(false),
            kill: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            overload_rejections: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            deduped_puts: AtomicU64::new(0),
            net_faults: AtomicU64::new(0),
            degraded_answers: AtomicU64::new(0),
            drift_window: config.drift_window,
            drift_threshold: config.drift_threshold,
            net_plan: config.net_faults,
            scrub_batch: config.scrub_batch,
            crash_after: config.crash_after,
        });
        Ok(Boot {
            listener,
            addr,
            shared,
            replay,
            config,
        })
    }

    fn serve(self) -> io::Result<ServerReport> {
        let workers = if self.config.threads == 0 {
            Pool::new().threads()
        } else {
            self.config.threads
        }
        .max(1);
        // One task per worker plus the acceptor and the scrubber; with
        // task count equal to the pool width, guided chunking degenerates
        // to one task per participant, so every long-running loop gets
        // its own thread.
        let scrubbers = usize::from(self.config.scrub_batch > 0);
        let pool = Pool::with_threads(workers + 1 + scrubbers);
        let shared: &Shared = &self.shared;
        let listener = &self.listener;
        pool.scope(|scope| {
            scope.spawn(move || acceptor_loop(listener, shared));
            if scrubbers > 0 {
                scope.spawn(move || scrubber_loop(shared));
            }
            for _ in 0..workers {
                scope.spawn(move || worker_loop(shared));
            }
        });

        if let ServeAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
        let graceful = !shared.kill.load(Ordering::SeqCst);
        let compaction = if graceful {
            Some(lock(&shared.state).store.compact()?)
        } else {
            None
        };
        let stats = shared.snapshot();
        Ok(ServerReport {
            replay: self.replay,
            stats,
            compaction,
            graceful,
        })
    }
}

/// Handle to a [`Server::spawn`]ed daemon.
pub struct RunningServer {
    addr: ServeAddr,
    shared: Arc<Shared>,
    handle: std::thread::JoinHandle<io::Result<ServerReport>>,
}

impl RunningServer {
    /// The resolved listen address (for TCP, with the actual port).
    pub fn addr(&self) -> &ServeAddr {
        &self.addr
    }

    /// Connects a client.
    pub fn connect(&self) -> io::Result<Connection> {
        self.addr.connect()
    }

    /// Requests a graceful shutdown over the protocol and waits for the
    /// final report (flush + compact included).
    pub fn shutdown(self) -> io::Result<ServerReport> {
        if let Ok(mut conn) = self.addr.connect() {
            // Tolerate errors: the server may already be draining.
            let _ = conn.request(&Request::Shutdown);
        } else {
            // No connection possible (e.g. already stopping): fall back
            // to the drain flag so join cannot hang.
            self.shared.stop.store(true, Ordering::SeqCst);
        }
        self.join()
    }

    /// Simulated crash: stop serving as fast as possible, skip the
    /// shutdown compaction. Acked writes are already durable.
    pub fn kill(self) -> io::Result<ServerReport> {
        self.shared.kill.store(true, Ordering::SeqCst);
        self.join()
    }

    /// Waits for the server to stop (however that happens).
    pub fn join(self) -> io::Result<ServerReport> {
        match self.handle.join() {
            Ok(report) => report,
            Err(_) => Err(io::Error::new(
                io::ErrorKind::Other,
                "server thread panicked",
            )),
        }
    }
}

/// Task 0: accept connections and feed the admission queue.
fn acceptor_loop(listener: &Listener, shared: &Shared) {
    while !shared.stopping() {
        match listener.accept() {
            Ok(stream) => {
                if stream.configure_server().is_err() {
                    continue;
                }
                shared.connections.fetch_add(1, Ordering::SeqCst);
                let mut queue = lock(&shared.queue);
                if queue.len() >= shared.queue_cap {
                    drop(queue);
                    shared.overload_rejections.fetch_add(1, Ordering::SeqCst);
                    let mut stream = stream;
                    let _ = write_frame(
                        &mut stream,
                        &Response::error(ErrorCode::Overloaded, "admission queue full").to_json(),
                    );
                    // Dropping the stream closes the rejected connection.
                } else {
                    queue.push_back(stream);
                    drop(queue);
                    shared.queue_ready.notify_one();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept failures (e.g. EMFILE) back off and retry.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Wake parked workers so the drain check runs promptly.
    shared.queue_ready.notify_all();
}

/// Worker task: own one connection at a time until drained.
fn worker_loop(shared: &Shared) {
    loop {
        let next = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.stopping() {
                    break None;
                }
                let (guard, _) = shared
                    .queue_ready
                    .wait_timeout(queue, QUEUE_WAIT)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        };
        match next {
            Some(stream) => serve_connection(stream, shared),
            None => return,
        }
    }
}

/// Background task: incremental scrub on a short cadence. Each step
/// takes the state lock briefly — repairs anything quarantined, then
/// verifies the next `scrub_batch` live records — so a full pass over
/// the store interleaves with serving instead of stalling it. Scrub I/O
/// errors are swallowed: the scrubber is best-effort and the backlog it
/// could not clear stays visible as `quarantine_pending`.
fn scrubber_loop(shared: &Shared) {
    while !shared.stopping() {
        std::thread::sleep(SCRUB_INTERVAL);
        let mut state = lock(&shared.state);
        let _ = state.store.scrub_step(shared.scrub_batch);
    }
}

/// Fair handoff: a worker must not camp on one connection while others
/// wait in the admission queue — deadline-based clients on the queued
/// connections would time out against a server that is merely busy, not
/// faulty. When the queue is non-empty the current stream goes to the
/// back and the worker picks up the next one; rotation only ever happens
/// at a frame boundary (after a response went out, or on an idle read
/// window), so no partially read frame is abandoned. Returns the stream
/// back when there is no contention.
fn rotate_if_contended(stream: Stream, shared: &Shared) -> Option<Stream> {
    let mut queue = lock(&shared.queue);
    if queue.is_empty() {
        return Some(stream);
    }
    queue.push_back(stream);
    drop(queue);
    shared.queue_ready.notify_one();
    None
}

/// Serves one connection until it closes, errors, rotates out behind a
/// contended admission queue, or the server drains.
fn serve_connection(mut stream: Stream, shared: &Shared) {
    loop {
        if shared.kill.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(&mut stream) {
            Ok(None) => return,
            Ok(Some(json)) => {
                // Net chaos fires only on rid-stamped frames: control
                // traffic (stats/shutdown) and rid-less clients stay
                // reliable, and the decision is a pure function of the
                // rid so a chaos run replays exactly.
                let fault = shared
                    .net_plan
                    .as_ref()
                    .and_then(|plan| frame_rid(&json).and_then(|rid| plan.fault_for(rid)));
                if let Some(kind) = fault {
                    shared.net_faults.fetch_add(1, Ordering::SeqCst);
                    match kind {
                        NetFaultKind::DropRequest => continue,
                        NetFaultKind::Reset => return,
                        NetFaultKind::DropResponse => {
                            // The request takes effect — an acked-side
                            // effect the client never hears about, the
                            // case idempotent retries exist for.
                            let _ = handle_frame(shared, &json);
                            shared.requests.fetch_add(1, Ordering::SeqCst);
                            continue;
                        }
                        NetFaultKind::PartialResponse { keep_frac } => {
                            let (response, _) = handle_frame(shared, &json);
                            let mut frame = Vec::new();
                            let _ = write_frame(&mut frame, &response.to_json());
                            let keep =
                                ((frame.len() as f64 * keep_frac) as usize).clamp(1, frame.len() - 1);
                            let _ = stream.write_all(&frame[..keep]);
                            let _ = stream.flush();
                            // A torn frame cannot be resynchronized.
                            return;
                        }
                        NetFaultKind::Delay { extra_ms } => {
                            // Simulated latency: bounded, real enough to
                            // exercise client read deadlines.
                            std::thread::sleep(Duration::from_millis(u64::from(extra_ms.min(50))));
                        }
                    }
                }
                let (response, close) = handle_frame(shared, &json);
                let sent = respond(&mut stream, shared, &response);
                if close || sent.is_err() {
                    return;
                }
                match rotate_if_contended(stream, shared) {
                    Some(kept) => stream = kept,
                    None => return,
                }
            }
            Err(FrameError::Idle) => {
                if shared.stopping() {
                    return;
                }
                match rotate_if_contended(stream, shared) {
                    Some(kept) => stream = kept,
                    None => return,
                }
            }
            Err(FrameError::Truncated) | Err(FrameError::Io(_)) => return,
            Err(FrameError::Oversized(claimed)) => {
                shared.protocol_errors.fetch_add(1, Ordering::SeqCst);
                let _ = respond(
                    &mut stream,
                    shared,
                    &Response::error(
                        ErrorCode::Oversized,
                        format!("frame claims {claimed} bytes (max {})", crate::protocol::MAX_FRAME_LEN),
                    ),
                );
                // The stream position cannot be resynchronized after an
                // oversized claim; close.
                return;
            }
            Err(FrameError::Malformed(message)) => {
                shared.protocol_errors.fetch_add(1, Ordering::SeqCst);
                // Framing is intact, so the connection survives.
                if respond(
                    &mut stream,
                    shared,
                    &Response::error(ErrorCode::Malformed, message),
                )
                .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// Writes a response frame and counts it. When `crash_after` is armed,
/// reaching the threshold trips the kill flag *after* this answer went
/// out — the crash happens between acks, exactly the window a
/// supervisor restart must not lose writes in.
fn respond(stream: &mut Stream, shared: &Shared, response: &Response) -> io::Result<()> {
    write_frame(stream, &response.to_json())?;
    let answered = shared.requests.fetch_add(1, Ordering::SeqCst) + 1;
    if let Some(limit) = shared.crash_after {
        if answered >= limit {
            shared.kill.store(true, Ordering::SeqCst);
        }
    }
    Ok(())
}

/// Dispatches one decoded frame. Returns the response and whether the
/// connection must close afterwards.
fn handle_frame(shared: &Shared, json: &Json) -> (Response, bool) {
    let request = match Request::from_json(json) {
        Ok(request) => request,
        Err(message) => return (Response::error(ErrorCode::BadRequest, message), false),
    };
    if shared.stopping() && !matches!(request, Request::Shutdown | Request::Stats) {
        return (
            Response::error(ErrorCode::ShuttingDown, "server is draining"),
            true,
        );
    }
    match request {
        Request::GetProfile { key } => {
            let mut state = lock(&shared.state);
            match state.store.get_outcome(key) {
                Ok(GetOutcome::Hit { seq, profile }) => {
                    let drift = state.monitors.get(&key).and_then(MonitorSlot::status);
                    let stale = drift.as_ref().is_some_and(|d| d.stale);
                    if stale {
                        // Latched drift observed on a served key: flag
                        // for re-profiling.
                        state.repair_queue.insert(key);
                    }
                    // Degraded mode: part of the store is quarantined
                    // pending repair. This answer is verified bytes, but
                    // the serving context is impaired — say so, keep
                    // serving.
                    let degraded = state.store.quarantine_pending() > 0;
                    if degraded {
                        shared.degraded_answers.fetch_add(1, Ordering::SeqCst);
                    }
                    (
                        Response::Profile {
                            key,
                            seq,
                            profile: (*profile).clone(),
                            drift,
                            stale,
                            degraded,
                        },
                        false,
                    )
                }
                Ok(GetOutcome::Miss) => (not_found(key), false),
                Ok(GetOutcome::Quarantined) => {
                    shared.degraded_answers.fetch_add(1, Ordering::SeqCst);
                    (
                        Response::error(
                            ErrorCode::Quarantined,
                            format!(
                                "record for camera {:016x} grid {:016x} is quarantined pending repair; retry",
                                key.camera, key.grid
                            ),
                        ),
                        false,
                    )
                }
                Err(e) => (Response::error(ErrorCode::Store, e.to_string()), false),
            }
        }
        Request::PutProfile {
            key,
            profile,
            expected_seq,
        } => {
            let mut state = lock(&shared.state);
            if let Some(expected) = expected_seq {
                let current = state.store.seq(key);
                if current >= expected {
                    // Retry of an already-applied put: the original
                    // append is durable, so ack it again without
                    // touching the store — the idempotence contract.
                    shared.deduped_puts.fetch_add(1, Ordering::SeqCst);
                    return (Response::Ok { seq: expected }, false);
                }
                if expected > current + 1 {
                    return (
                        Response::error(
                            ErrorCode::BadRequest,
                            format!(
                                "expected_seq {expected} skips ahead of current seq {current}"
                            ),
                        ),
                        false,
                    );
                }
            }
            match state.store.put(key, &profile) {
                Ok(seq) => {
                    if state.repair_queue.remove(&key) {
                        // A fresh profile is the repair for a drift
                        // flag: retire the exhausted monitor so scoring
                        // restarts against the new baseline.
                        state.monitors.remove(&key);
                    }
                    (Response::Ok { seq }, false)
                }
                Err(e) => (Response::error(ErrorCode::Store, e.to_string()), false),
            }
        }
        Request::QueryTradeoff {
            key,
            max_err,
            max_fraction,
            max_bytes,
            max_energy_j,
        } => {
            let mut state = lock(&shared.state);
            // `get_outcome`, not `get`: a quarantine-pending record must
            // answer with a retryable `quarantined` error, never collapse
            // into `not_found` — an acked key temporarily failing its
            // checksum is degraded, not absent.
            match state.store.get_outcome(key) {
                Ok(GetOutcome::Hit { profile, .. }) => {
                    let energy = EnergyModel::default();
                    let native = Resolution::square(COST_NATIVE_RES);
                    let mut matches: Vec<ProfilePoint> = profile
                        .points
                        .iter()
                        .filter(|p| {
                            if p.err_b > max_err
                                || max_fraction.is_some_and(|mf| p.set.sample_fraction > mf)
                            {
                                return false;
                            }
                            if max_bytes.is_none() && max_energy_j.is_none() {
                                return true;
                            }
                            // Cost budgets (`camera::cost`): judge each
                            // point on shipping the canonical window at
                            // its sampled rate.
                            let shipped = (p.set.sample_fraction
                                * COST_WINDOW_FRAMES as f64)
                                .ceil()
                                .min(COST_WINDOW_FRAMES as f64)
                                as usize;
                            let cost = transmission_cost(
                                &p.set,
                                COST_WINDOW_FRAMES,
                                shipped,
                                native,
                                &energy,
                            );
                            max_bytes.map_or(true, |mb| cost.bytes <= mb)
                                && max_energy_j.map_or(true, |mj| cost.energy_j <= mj)
                        })
                        .cloned()
                        .collect();
                    // Cheapest first, deterministically: ascending capture
                    // spend, ties broken by the tighter bound.
                    matches.sort_by(|a, b| {
                        a.set
                            .sample_fraction
                            .total_cmp(&b.set.sample_fraction)
                            .then(a.err_b.total_cmp(&b.err_b))
                    });
                    (Response::Tradeoff { matches }, false)
                }
                Ok(GetOutcome::Miss) => (not_found(key), false),
                Ok(GetOutcome::Quarantined) => (
                    Response::error(
                        ErrorCode::Quarantined,
                        format!("record {key:?} is quarantined pending repair"),
                    ),
                    false,
                ),
                Err(e) => (Response::error(ErrorCode::Store, e.to_string()), false),
            }
        }
        Request::PushOutputs { key, outputs } => {
            let mut state = lock(&shared.state);
            let (window, threshold) = (shared.drift_window, shared.drift_threshold);
            let slot = state.monitors.entry(key).or_default();
            let scored = slot.push(&outputs, window, threshold);
            if slot.stale() {
                // The push that latches the flag enqueues immediately:
                // detection and repair scheduling are one step.
                state.repair_queue.insert(key);
            }
            (Response::Ok { seq: scored }, false)
        }
        Request::Scrub { budget } => {
            let mut state = lock(&shared.state);
            match state.store.scrub_step(budget as usize) {
                Ok(report) => (
                    Response::Scrub {
                        scanned: report.scanned as u64,
                        verified: report.verified as u64,
                        repaired: report.repaired as u64,
                        quarantined: report.quarantined as u64,
                        unrepaired: report.unrepaired as u64,
                        wrapped: report.wrapped,
                    },
                    false,
                ),
                Err(e) => (Response::error(ErrorCode::Store, e.to_string()), false),
            }
        }
        Request::Stats => (Response::Stats(Box::new(shared.snapshot())), false),
        Request::Shutdown => {
            shared.stop.store(true, Ordering::SeqCst);
            (Response::Bye, true)
        }
    }
}

fn not_found(key: StoreKey) -> Response {
    Response::error(
        ErrorCode::NotFound,
        format!(
            "no record for camera {:016x} grid {:016x}",
            key.camera, key.grid
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smokescreen_core::{Aggregate, Profile};
    use smokescreen_degrade::InterventionSet;
    use smokescreen_video::ObjectClass;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smk-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sock(tag: &str) -> ServeAddr {
        let path = std::env::temp_dir().join(format!("smk-{tag}-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        ServeAddr::Unix(path)
    }

    fn profile(points: usize) -> Profile {
        Profile {
            corpus: "night-street".into(),
            model: "oracle".into(),
            class: ObjectClass::Car,
            aggregate: Aggregate::Avg,
            delta: 0.05,
            points: (0..points)
                .map(|i| ProfilePoint {
                    set: InterventionSet::sampling(0.1 + 0.1 * i as f64),
                    y_approx: 1.0 + i as f64,
                    err_b: 0.30 - 0.05 * i as f64,
                    corrected: i % 2 == 0,
                    n: 100 + i,
                })
                .collect(),
        }
    }

    #[test]
    fn round_trip_over_unix_socket_then_graceful_shutdown_compacts() {
        let dir = tmp_dir("rt");
        let server = Server::new(
            ServerConfig::new(sock("rt"), &dir).with_threads(2),
        )
        .spawn()
        .unwrap();
        let mut conn = server.connect().unwrap();

        let key = StoreKey::new(7, 9);
        let p = profile(4);
        match conn
            .request(&Request::PutProfile {
                key,
                profile: p.clone(),
                expected_seq: None,
            })
            .unwrap()
        {
            Response::Ok { seq } => assert_eq!(seq, 1),
            other => panic!("expected ok, got {other:?}"),
        }
        match conn.request(&Request::GetProfile { key }).unwrap() {
            Response::Profile {
                key: k,
                seq,
                profile,
                drift,
                stale,
                degraded,
            } => {
                assert_eq!(k, key);
                assert_eq!(seq, 1);
                assert_eq!(profile, p);
                assert!(drift.is_none(), "no outputs pushed yet");
                assert!(!stale && !degraded, "clean store, fresh profile");
            }
            other => panic!("expected profile, got {other:?}"),
        }
        // Tradeoff query: err_b <= 0.25 excludes the first point; budget
        // 0.25 keeps fractions 0.1 and 0.2 only.
        match conn
            .request(&Request::QueryTradeoff {
                key,
                max_err: 0.25,
                max_fraction: Some(0.25),
                max_bytes: None,
                max_energy_j: None,
            })
            .unwrap()
        {
            Response::Tradeoff { matches } => {
                assert_eq!(matches.len(), 1);
                assert!((matches[0].set.sample_fraction - 0.2).abs() < 1e-12);
            }
            other => panic!("expected tradeoff, got {other:?}"),
        }
        match conn.request(&Request::GetProfile { key: StoreKey::new(1, 1) }) {
            Ok(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::NotFound),
            other => panic!("expected not_found, got {other:?}"),
        }
        match conn.request(&Request::Stats).unwrap() {
            Response::Stats(stats) => {
                assert_eq!(stats.puts, 1);
                assert_eq!(stats.live_records, 1);
                assert!(stats.requests >= 4);
                assert_eq!(stats.connections, 1);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        drop(conn);

        let report = server.shutdown().unwrap();
        assert!(report.graceful);
        let compaction = report.compaction.expect("graceful stop compacts");
        assert_eq!(compaction.live_records, 1);

        // Reopen: the compaction index makes the restart O(1).
        let (store, replay) = ProfileStore::open(&dir, "smokescreen-serve").unwrap();
        assert!(replay.index_used);
        assert_eq!(replay.quarantined_records, 0);
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_capacity_queue_rejects_with_typed_overload() {
        let dir = tmp_dir("ovl");
        let server = Server::new(
            ServerConfig::new(sock("ovl"), &dir)
                .with_threads(1)
                .with_queue_cap(0),
        )
        .spawn()
        .unwrap();
        let mut conn = server.connect().unwrap();
        match conn.receive() {
            Ok(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Overloaded),
            other => panic!("expected overloaded, got {other:?}"),
        }
        let report = server.kill().unwrap();
        assert!(!report.graceful);
        assert!(report.compaction.is_none());
        assert_eq!(report.stats.overload_rejections, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drift_monitor_latches_staleness_visible_in_get_profile() {
        let dir = tmp_dir("drift");
        let server = Server::new(
            ServerConfig::new(sock("drift"), &dir)
                .with_threads(1)
                .with_drift(16, 4.0),
        )
        .spawn()
        .unwrap();
        let mut conn = server.connect().unwrap();

        let key = StoreKey::new(3, 4);
        conn.request(&Request::PutProfile {
            key,
            profile: profile(2),
            expected_seq: None,
        })
        .unwrap();

        // Clean baseline stream: mean 1.0, mild deterministic wobble.
        let clean: Vec<f64> = (0..64)
            .map(|i| 1.0 + 0.05 * ((i % 7) as f64 - 3.0))
            .collect();
        match conn
            .request(&Request::PushOutputs {
                key,
                outputs: clean.clone(),
            })
            .unwrap()
        {
            Response::Ok { .. } => {}
            other => panic!("expected ok, got {other:?}"),
        }
        match conn.request(&Request::GetProfile { key }).unwrap() {
            Response::Profile { drift, .. } => {
                let drift = drift.expect("monitor established after 4 windows");
                assert!(!drift.stale, "clean stream must not flag");
            }
            other => panic!("expected profile, got {other:?}"),
        }

        // Prevalence shift: mean jumps 3x — the monitor must latch.
        let shifted: Vec<f64> = clean.iter().map(|y| y * 3.0).collect();
        conn.request(&Request::PushOutputs {
            key,
            outputs: shifted,
        })
        .unwrap();
        match conn.request(&Request::GetProfile { key }).unwrap() {
            Response::Profile { drift, .. } => {
                let drift = drift.expect("monitor alive");
                assert!(drift.stale, "shifted stream must latch staleness");
                assert!(drift.windows_flagged > 0);
                assert!(drift.score > 4.0);
            }
            other => panic!("expected profile, got {other:?}"),
        }
        match conn.request(&Request::Stats).unwrap() {
            Response::Stats(stats) => {
                assert_eq!(stats.drift_monitors, 1);
                assert_eq!(stats.stale_monitors, 1);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        drop(conn);
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn idempotent_put_retries_never_double_apply() {
        let dir = tmp_dir("idem");
        let server = Server::new(ServerConfig::new(sock("idem"), &dir).with_threads(1))
            .spawn()
            .unwrap();
        let mut conn = server.connect().unwrap();
        let key = StoreKey::new(21, 34);
        let put = Request::PutProfile {
            key,
            profile: profile(2),
            expected_seq: Some(1),
        };
        match conn.request(&put).unwrap() {
            Response::Ok { seq } => assert_eq!(seq, 1),
            other => panic!("expected ok, got {other:?}"),
        }
        // The retry a client sends after a lost ack: same payload, same
        // expected_seq. It must be absorbed, not re-applied.
        for _ in 0..3 {
            match conn.request(&put).unwrap() {
                Response::Ok { seq } => assert_eq!(seq, 1, "retry acks the original seq"),
                other => panic!("expected ok, got {other:?}"),
            }
        }
        // Skipping ahead is a client bug, not a retry: typed rejection.
        match conn
            .request(&Request::PutProfile {
                key,
                profile: profile(2),
                expected_seq: Some(5),
            })
            .unwrap()
        {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("expected bad_request, got {other:?}"),
        }
        match conn.request(&Request::Stats).unwrap() {
            Response::Stats(stats) => {
                assert_eq!(stats.puts, 1, "one durable append despite 4 sends");
                assert_eq!(stats.deduped_puts, 3);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        drop(conn);
        let report = server.shutdown().unwrap();
        assert_eq!(report.stats.live_records, 1);
        // The sequence counter never moved past the first apply.
        let (store, _) = ProfileStore::open(&dir, "smokescreen-serve").unwrap();
        assert_eq!(store.seq(key), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantined_key_degrades_serving_then_heals() {
        let dir = tmp_dir("degraded");
        let plan = DiskFaultPlan::new(0xD15C, 0.6);
        // Pick keys by their scheduled read fate: `victim` draws a
        // bit-flip, `clean` does not.
        let victim = (0..400u64)
            .map(|i| StoreKey::new(i, 70))
            .find(|k| plan.read_fault(crate::store::op_key(*k, 1, 0)).is_some())
            .expect("some key draws a read fault at 60%");
        let clean = (0..400u64)
            .map(|i| StoreKey::new(i, 71))
            .find(|k| plan.read_fault(crate::store::op_key(*k, 1, 0)).is_none())
            .expect("some key reads clean at 60%");
        // cache_cap 0 forces disk reads; scrub_batch 0 keeps the
        // background scrubber out so the degraded window is observable.
        let server = Server::new(
            ServerConfig::new(sock("degraded"), &dir)
                .with_threads(1)
                .with_cache_cap(0)
                .with_disk_faults(Some(plan))
                .with_scrub_batch(0),
        )
        .spawn()
        .unwrap();
        let mut conn = server.connect().unwrap();
        // Write faults fire at 60% too: retry with the idempotence guard
        // until acked — exactly what a fault-tolerant client does.
        for key in [victim, clean] {
            let put = Request::PutProfile {
                key,
                profile: profile(1),
                expected_seq: Some(1),
            };
            let mut acked = false;
            for _ in 0..16 {
                match conn.request(&put).unwrap() {
                    Response::Ok { seq } => {
                        assert_eq!(seq, 1);
                        acked = true;
                        break;
                    }
                    Response::Error { code, .. } => assert_eq!(code, ErrorCode::Store),
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert!(acked, "retried puts converge");
        }
        // First read of the victim trips the scheduled bit-flip.
        match conn.request(&Request::GetProfile { key: victim }).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Quarantined),
            other => panic!("expected quarantined, got {other:?}"),
        }
        // Degraded mode: the clean key still serves, flagged.
        match conn.request(&Request::GetProfile { key: clean }).unwrap() {
            Response::Profile { degraded, .. } => {
                assert!(degraded, "quarantine pending marks answers degraded");
            }
            other => panic!("expected profile, got {other:?}"),
        }
        // Retried victim reads heal within the scheduled bound (≤ 2 more
        // attempts), served by the get-path repair.
        let mut healed = false;
        for _ in 0..3 {
            match conn.request(&Request::GetProfile { key: victim }).unwrap() {
                Response::Profile { seq, .. } => {
                    assert_eq!(seq, 1);
                    healed = true;
                    break;
                }
                Response::Error { code, .. } => assert_eq!(code, ErrorCode::Quarantined),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(healed, "bit-flips heal on re-read");
        // Quarantine drained: serving leaves degraded mode.
        match conn.request(&Request::GetProfile { key: clean }).unwrap() {
            Response::Profile { degraded, .. } => assert!(!degraded),
            other => panic!("expected profile, got {other:?}"),
        }
        // A wire-driven scrub pass confirms a fully verified store.
        match conn.request(&Request::Scrub { budget: 100 }).unwrap() {
            Response::Scrub {
                wrapped,
                unrepaired,
                ..
            } => {
                assert!(wrapped);
                assert_eq!(unrepaired, 0);
            }
            other => panic!("expected scrub, got {other:?}"),
        }
        match conn.request(&Request::Stats).unwrap() {
            Response::Stats(stats) => {
                assert!(stats.disk_write_faults > 0 || stats.disk_read_faults > 0);
                assert_eq!(stats.quarantine_pending, 0);
                assert!(stats.repaired_records >= 1);
                assert!(stats.degraded_answers >= 2);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        drop(conn);
        let report = server.shutdown().unwrap();
        assert!(report.graceful);
        // Cold audit under clean I/O: both acked writes intact.
        let (mut store, replay) = ProfileStore::open(&dir, "smokescreen-serve").unwrap();
        assert_eq!(replay.quarantined_records, 0);
        for key in [victim, clean] {
            assert_eq!(*store.get(key).unwrap().unwrap().1, profile(1));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_profile_enters_repair_queue_and_reput_repairs() {
        let dir = tmp_dir("repairq");
        let server = Server::new(
            ServerConfig::new(sock("repairq"), &dir)
                .with_threads(1)
                .with_drift(16, 4.0),
        )
        .spawn()
        .unwrap();
        let mut conn = server.connect().unwrap();
        let key = StoreKey::new(42, 43);
        conn.request(&Request::PutProfile {
            key,
            profile: profile(2),
            expected_seq: None,
        })
        .unwrap();
        let clean: Vec<f64> = (0..64)
            .map(|i| 1.0 + 0.05 * ((i % 7) as f64 - 3.0))
            .collect();
        conn.request(&Request::PushOutputs {
            key,
            outputs: clean.clone(),
        })
        .unwrap();
        let shifted: Vec<f64> = clean.iter().map(|y| y * 3.0).collect();
        conn.request(&Request::PushOutputs {
            key,
            outputs: shifted,
        })
        .unwrap();
        // The latched signal marks the served profile stale with a
        // widened bound, and the key is queued for re-profiling.
        match conn.request(&Request::GetProfile { key }).unwrap() {
            Response::Profile { stale, drift, .. } => {
                assert!(stale, "latched drift marks the answer stale");
                let drift = drift.expect("monitor alive");
                assert!(
                    drift.widen > 1.0,
                    "stale answers carry a widening factor, got {}",
                    drift.widen
                );
            }
            other => panic!("expected profile, got {other:?}"),
        }
        match conn.request(&Request::Stats).unwrap() {
            Response::Stats(stats) => {
                assert_eq!(stats.repair_queue_len, 1);
                assert_eq!(
                    stats.repair_queue,
                    vec![format!("{:016x}:{:016x}", key.camera, key.grid)]
                );
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // Re-profiling the key is the repair: dequeued, monitor retired,
        // answers fresh again.
        conn.request(&Request::PutProfile {
            key,
            profile: profile(3),
            expected_seq: None,
        })
        .unwrap();
        match conn.request(&Request::GetProfile { key }).unwrap() {
            Response::Profile { stale, drift, .. } => {
                assert!(!stale, "fresh profile serves fresh");
                assert!(drift.is_none(), "exhausted monitor retired");
            }
            other => panic!("expected profile, got {other:?}"),
        }
        match conn.request(&Request::Stats).unwrap() {
            Response::Stats(stats) => {
                assert_eq!(stats.repair_queue_len, 0);
                assert!(stats.repair_queue.is_empty());
            }
            other => panic!("expected stats, got {other:?}"),
        }
        drop(conn);
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tradeoff_cost_budgets_filter_for_every_aggregate() {
        use smokescreen_core::Aggregate;
        let aggregates = [
            Aggregate::Avg,
            Aggregate::Sum,
            Aggregate::Count { at_least: 1.0 },
            Aggregate::Max { r: 0.99 },
            Aggregate::Min { r: 0.01 },
            Aggregate::Quantile { r: 0.5 },
            Aggregate::Var,
        ];
        let dir = tmp_dir("cost");
        let server = Server::new(ServerConfig::new(sock("cost"), &dir).with_threads(1))
            .spawn()
            .unwrap();
        let mut conn = server.connect().unwrap();
        let native = Resolution::square(COST_NATIVE_RES);
        let energy = EnergyModel::default();
        // Budget pinned to the true cost of the fraction-0.2 point: the
        // filter must keep exactly the points at or under that spend.
        let cost_at = |fraction: f64| {
            let shipped = (fraction * COST_WINDOW_FRAMES as f64).ceil() as usize;
            transmission_cost(
                &smokescreen_degrade::InterventionSet::sampling(fraction),
                COST_WINDOW_FRAMES,
                shipped,
                native,
                &energy,
            )
        };
        for (i, aggregate) in aggregates.into_iter().enumerate() {
            let key = StoreKey::new(100 + i as u64, 9);
            let mut p = profile(4); // fractions 0.1..0.4, all within max_err below
            p.aggregate = aggregate;
            // Budgets pinned to the *stored* fractions (0.1 + 0.1·i is
            // not exactly 0.2 in floating point).
            let fractions: Vec<f64> =
                p.points.iter().map(|pt| pt.set.sample_fraction).collect();
            conn.request(&Request::PutProfile {
                key,
                profile: p,
                expected_seq: None,
            })
            .unwrap();
            let budget_bytes = cost_at(fractions[1]).bytes;
            match conn
                .request(&Request::QueryTradeoff {
                    key,
                    max_err: 1.0,
                    max_fraction: None,
                    max_bytes: Some(budget_bytes),
                    max_energy_j: None,
                })
                .unwrap()
            {
                Response::Tradeoff { matches } => {
                    assert_eq!(matches.len(), 2, "{aggregate:?}: byte budget keeps 0.1, 0.2");
                    assert!(matches
                        .iter()
                        .all(|m| cost_at(m.set.sample_fraction).bytes <= budget_bytes));
                    assert!(
                        matches[0].set.sample_fraction < matches[1].set.sample_fraction,
                        "cheapest first"
                    );
                }
                other => panic!("expected tradeoff, got {other:?}"),
            }
            let budget_j = cost_at(fractions[2]).energy_j;
            match conn
                .request(&Request::QueryTradeoff {
                    key,
                    max_err: 1.0,
                    max_fraction: None,
                    max_bytes: None,
                    max_energy_j: Some(budget_j),
                })
                .unwrap()
            {
                Response::Tradeoff { matches } => {
                    assert_eq!(
                        matches.len(),
                        3,
                        "{aggregate:?}: energy budget keeps 0.1..0.3"
                    );
                    assert!(matches
                        .iter()
                        .all(|m| cost_at(m.set.sample_fraction).energy_j <= budget_j + 1e-12));
                }
                other => panic!("expected tradeoff, got {other:?}"),
            }
        }
        drop(conn);
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_after_trips_kill_between_acks() {
        let dir = tmp_dir("crashafter");
        let server = Server::new(
            ServerConfig::new(sock("crashafter"), &dir)
                .with_threads(1)
                .with_crash_after(Some(2)),
        )
        .spawn()
        .unwrap();
        let mut conn = server.connect().unwrap();
        let key = StoreKey::new(1, 2);
        conn.request(&Request::PutProfile {
            key,
            profile: profile(1),
            expected_seq: Some(1),
        })
        .unwrap();
        // The second answered request trips the kill: the ack goes out,
        // then the server dies as a crash (no compaction).
        match conn.request(&Request::GetProfile { key }).unwrap() {
            Response::Profile { seq, .. } => assert_eq!(seq, 1),
            other => panic!("unexpected {other:?}"),
        }
        let report = server.join().unwrap();
        assert!(!report.graceful, "crash_after is a kill, not a drain");
        assert!(report.compaction.is_none());
        // The acked write survives the crash: supervisor restarts lose
        // nothing.
        let (mut store, replay) = ProfileStore::open(&dir, "smokescreen-serve").unwrap();
        assert_eq!(replay.quarantined_records, 0);
        assert_eq!(store.get(key).unwrap().unwrap().0, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_transport_serves_and_survives_kill_reopen() {
        let dir = tmp_dir("tcp");
        let server = Server::new(
            ServerConfig::new(ServeAddr::Tcp("127.0.0.1:0".into()), &dir).with_threads(2),
        )
        .spawn()
        .unwrap();
        assert!(matches!(server.addr(), ServeAddr::Tcp(a) if !a.ends_with(":0")));
        let mut conn = server.connect().unwrap();
        let key = StoreKey::new(11, 22);
        let p = profile(3);
        match conn
            .request(&Request::PutProfile {
                key,
                profile: p.clone(),
                expected_seq: None,
            })
            .unwrap()
        {
            Response::Ok { seq } => assert_eq!(seq, 1),
            other => panic!("expected ok, got {other:?}"),
        }
        drop(conn);

        // Crash without compaction: the acked put must survive.
        let report = server.kill().unwrap();
        assert!(!report.graceful);
        let (mut store, replay) = ProfileStore::open(&dir, "smokescreen-serve").unwrap();
        assert_eq!(replay.quarantined_records, 0, "no acked write lost");
        let (seq, got) = store.get(key).unwrap().expect("record survives the kill");
        assert_eq!(seq, 1);
        assert_eq!(*got, p);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
