//! Length-prefixed `rt::json` wire protocol.
//!
//! A frame is a `u32` little-endian byte length followed by exactly that
//! many bytes of UTF-8 JSON. The protocol inherits `rt::json`'s defensive
//! posture end to end: frames over [`MAX_FRAME_LEN`] are rejected before a
//! byte of the body is buffered, parse depth is capped by the parser
//! itself ([`smokescreen_rt::json::MAX_PARSE_DEPTH`]), and every decode
//! failure maps to a **typed error response** — a peer sending garbage
//! gets [`ErrorCode::Malformed`] back, never a hang, never a panic, and
//! (for recoverable damage) not even a dropped connection.
//!
//! Camera and grid identifiers are 64-bit hashes. JSON numbers are IEEE
//! doubles and silently lose integer precision above 2^53, so ids travel
//! as fixed-width 16-digit hex **strings** (`"00c5a2..."`), keeping keys
//! exact on the wire.

use std::io::{self, Read, Write};

use smokescreen_core::{Profile, ProfilePoint};
use smokescreen_rt::json::{FromJson, Json, ToJson};

use crate::store::StoreKey;

/// Largest accepted frame body (1 MiB). A length prefix beyond this is
/// answered with [`ErrorCode::Oversized`] and the connection is closed —
/// the stream position after an oversized claim cannot be resynchronized.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// How many consecutive read timeouts mid-frame are tolerated before the
/// peer is declared stalled and the frame torn. At the server's 50 ms
/// read timeout this is ~20 s — generous for a live peer, bounded for a
/// dead one (a worker can never hang forever inside one frame).
const STALL_RETRY_BUDGET: usize = 400;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// No bytes arrived within one read-timeout window at a frame
    /// boundary. Not damage: the server uses this to poll its shutdown
    /// flag between requests on an idle connection.
    Idle,
    /// The stream ended mid-frame (or a peer stalled past the retry
    /// budget). The connection is unusable.
    Truncated,
    /// The length prefix claims more than [`MAX_FRAME_LEN`] bytes.
    Oversized(usize),
    /// The body was not valid UTF-8 JSON (including depth bombs, which
    /// the parser rejects at `MAX_PARSE_DEPTH`). The stream itself is
    /// still framed correctly, so the connection can continue.
    Malformed(String),
    /// Transport error.
    Io(io::Error),
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream at a frame
/// boundary; see [`FrameError`] for every other outcome.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, FrameError> {
    let mut len_buf = [0u8; 4];
    match fill(r, &mut len_buf, true)? {
        Fill::CleanEof => return Ok(None),
        Fill::Idle => return Err(FrameError::Idle),
        Fill::Full => {}
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    let mut body = vec![0u8; len];
    match fill(r, &mut body, false)? {
        Fill::Full => {}
        Fill::CleanEof | Fill::Idle => unreachable!("fill only reports these at start"),
    }
    let text = std::str::from_utf8(&body)
        .map_err(|_| FrameError::Malformed("frame body is not UTF-8".into()))?;
    match Json::parse(text) {
        Ok(json) => Ok(Some(json)),
        Err(e) => Err(FrameError::Malformed(e.to_string())),
    }
}

/// Writes one frame (length prefix + encoded JSON) and flushes.
pub fn write_frame(w: &mut impl Write, json: &Json) -> io::Result<()> {
    let body = json.encode();
    debug_assert!(body.len() <= MAX_FRAME_LEN, "server produced oversized frame");
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(body.as_bytes());
    w.write_all(&buf)?;
    w.flush()
}

enum Fill {
    Full,
    /// EOF before the first byte (only when `boundary`).
    CleanEof,
    /// Timeout before the first byte (only when `boundary`).
    Idle,
}

/// Fills `buf` completely, tolerating short reads. At a frame `boundary`,
/// EOF/timeout before any byte is a clean outcome; once the first byte of
/// a frame has arrived, the peer owes the rest — EOF is truncation and
/// stalls are bounded by [`STALL_RETRY_BUDGET`].
fn fill(r: &mut impl Read, buf: &mut [u8], boundary: bool) -> Result<Fill, FrameError> {
    let mut filled = 0usize;
    let mut stalls = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if boundary && filled == 0 {
                    Ok(Fill::CleanEof)
                } else {
                    Err(FrameError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if boundary && filled == 0 {
                    return Ok(Fill::Idle);
                }
                stalls += 1;
                if stalls > STALL_RETRY_BUDGET {
                    return Err(FrameError::Truncated);
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Fill::Full)
}

/// Typed error taxonomy carried in `error` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame body was not parseable JSON or not a valid request.
    Malformed,
    /// The frame length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized,
    /// The request was well-formed JSON but semantically invalid
    /// (unknown op, bad predicate, out-of-range field).
    BadRequest,
    /// No record under the requested key.
    NotFound,
    /// The admission queue was full; retry later.
    Overloaded,
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// The store failed the operation (I/O error).
    Store,
}

impl ErrorCode {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Oversized => "oversized",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::NotFound => "not_found",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Store => "store",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Result<ErrorCode, String> {
        match s {
            "malformed" => Ok(ErrorCode::Malformed),
            "oversized" => Ok(ErrorCode::Oversized),
            "bad_request" => Ok(ErrorCode::BadRequest),
            "not_found" => Ok(ErrorCode::NotFound),
            "overloaded" => Ok(ErrorCode::Overloaded),
            "shutting_down" => Ok(ErrorCode::ShuttingDown),
            "store" => Ok(ErrorCode::Store),
            other => Err(format!("unknown error code {other:?}")),
        }
    }
}

/// Profile-freshness metadata served alongside profiles (the
/// `core::streaming` seam: drift scored by `core::similarity` over
/// outputs pushed via `push_outputs`).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftStatus {
    /// Largest drift score observed across scored windows.
    pub score: f64,
    /// Windows scored so far.
    pub windows_scored: u64,
    /// Windows whose score crossed the drift threshold.
    pub windows_flagged: u64,
    /// Latched staleness flag: once a window crosses the threshold the
    /// profile is stale until re-profiled.
    pub stale: bool,
}

impl ToJson for DriftStatus {
    fn to_json(&self) -> Json {
        Json::obj([
            ("score", self.score.to_json()),
            ("windows_scored", (self.windows_scored as usize).to_json()),
            ("windows_flagged", (self.windows_flagged as usize).to_json()),
            ("stale", self.stale.to_json()),
        ])
    }
}

impl FromJson for DriftStatus {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        Ok(DriftStatus {
            score: f64::from_json(value.get("score")?)?,
            windows_scored: value.get("windows_scored")?.as_u64()?,
            windows_flagged: value.get("windows_flagged")?.as_u64()?,
            stale: bool::from_json(value.get("stale")?)?,
        })
    }
}

/// Flat counter snapshot served by `STATS`.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered (any response type).
    pub requests: u64,
    /// Connections rejected by admission control.
    pub overload_rejections: u64,
    /// Frames answered with `malformed`/`oversized` errors.
    pub protocol_errors: u64,
    /// Live records in the store.
    pub live_records: u64,
    /// Data segment bytes.
    pub data_bytes: u64,
    /// Durable puts.
    pub puts: u64,
    /// Gets (hits + misses + not-found).
    pub gets: u64,
    /// Gets served from the read cache.
    pub cache_hits: u64,
    /// Gets that went to disk.
    pub cache_misses: u64,
    /// Records quarantined since open (lazy reads + compaction).
    pub quarantined_records: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Per-key drift monitors currently alive.
    pub drift_monitors: u64,
    /// Monitors whose staleness flag is latched.
    pub stale_monitors: u64,
}

impl ServerStats {
    const FIELDS: [&'static str; 14] = [
        "connections",
        "requests",
        "overload_rejections",
        "protocol_errors",
        "live_records",
        "data_bytes",
        "puts",
        "gets",
        "cache_hits",
        "cache_misses",
        "quarantined_records",
        "compactions",
        "drift_monitors",
        "stale_monitors",
    ];

    fn field(&self, name: &str) -> u64 {
        match name {
            "connections" => self.connections,
            "requests" => self.requests,
            "overload_rejections" => self.overload_rejections,
            "protocol_errors" => self.protocol_errors,
            "live_records" => self.live_records,
            "data_bytes" => self.data_bytes,
            "puts" => self.puts,
            "gets" => self.gets,
            "cache_hits" => self.cache_hits,
            "cache_misses" => self.cache_misses,
            "quarantined_records" => self.quarantined_records,
            "compactions" => self.compactions,
            "drift_monitors" => self.drift_monitors,
            "stale_monitors" => self.stale_monitors,
            _ => unreachable!("field list is closed"),
        }
    }

    fn field_mut(&mut self, name: &str) -> &mut u64 {
        match name {
            "connections" => &mut self.connections,
            "requests" => &mut self.requests,
            "overload_rejections" => &mut self.overload_rejections,
            "protocol_errors" => &mut self.protocol_errors,
            "live_records" => &mut self.live_records,
            "data_bytes" => &mut self.data_bytes,
            "puts" => &mut self.puts,
            "gets" => &mut self.gets,
            "cache_hits" => &mut self.cache_hits,
            "cache_misses" => &mut self.cache_misses,
            "quarantined_records" => &mut self.quarantined_records,
            "compactions" => &mut self.compactions,
            "drift_monitors" => &mut self.drift_monitors,
            "stale_monitors" => &mut self.stale_monitors,
            _ => unreachable!("field list is closed"),
        }
    }
}

impl ToJson for ServerStats {
    fn to_json(&self) -> Json {
        Json::obj(
            Self::FIELDS
                .iter()
                .map(|name| (*name, (self.field(name) as usize).to_json())),
        )
    }
}

impl FromJson for ServerStats {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        let mut stats = ServerStats::default();
        for name in Self::FIELDS {
            *stats.field_mut(name) = value.get(name)?.as_u64()?;
        }
        Ok(stats)
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Fetch the profile (and freshness metadata) for one key.
    GetProfile {
        /// Store key.
        key: StoreKey,
    },
    /// Durably store a profile; the `ok` response acks the sync.
    PutProfile {
        /// Store key.
        key: StoreKey,
        /// The profile to store.
        profile: Profile,
    },
    /// Tradeoff query: profiled points satisfying the error-bound /
    /// degradation-budget predicates, cheapest first.
    QueryTradeoff {
        /// Store key.
        key: StoreKey,
        /// Upper bound on acceptable `err_b`.
        max_err: f64,
        /// Optional upper bound on the sample fraction (a degradation
        /// budget: "spend at most this much capture").
        max_fraction: Option<f64>,
    },
    /// Feed fresh model outputs into the key's drift monitor.
    PushOutputs {
        /// Store key.
        key: StoreKey,
        /// Model outputs in stream order.
        outputs: Vec<f64>,
    },
    /// Counter snapshot.
    Stats,
    /// Graceful shutdown: flush + compact, then `bye`.
    Shutdown,
}

fn key_to_json(key: StoreKey) -> [(&'static str, Json); 2] {
    [
        ("camera", Json::Str(format!("{:016x}", key.camera))),
        ("grid", Json::Str(format!("{:016x}", key.grid))),
    ]
}

fn key_from_json(value: &Json) -> Result<StoreKey, String> {
    let parse = |field: &str| -> Result<u64, String> {
        let s = value
            .get(field)
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| e.to_string())?;
        if s.len() != 16 {
            return Err(format!("{field} id must be 16 hex digits, got {s:?}"));
        }
        u64::from_str_radix(&s, 16).map_err(|_| format!("{field} id {s:?} is not hex"))
    };
    Ok(StoreKey::new(parse("camera")?, parse("grid")?))
}

impl Request {
    /// Encodes the request for the wire.
    pub fn to_json(&self) -> Json {
        match self {
            Request::GetProfile { key } => {
                let [c, g] = key_to_json(*key);
                Json::obj([("op", Json::Str("get_profile".into())), c, g])
            }
            Request::PutProfile { key, profile } => {
                let [c, g] = key_to_json(*key);
                Json::obj([
                    ("op", Json::Str("put_profile".into())),
                    c,
                    g,
                    ("profile", ToJson::to_json(profile)),
                ])
            }
            Request::QueryTradeoff {
                key,
                max_err,
                max_fraction,
            } => {
                let [c, g] = key_to_json(*key);
                Json::obj([
                    ("op", Json::Str("query_tradeoff".into())),
                    c,
                    g,
                    ("max_err", max_err.to_json()),
                    ("max_fraction", max_fraction.to_json()),
                ])
            }
            Request::PushOutputs { key, outputs } => {
                let [c, g] = key_to_json(*key);
                Json::obj([
                    ("op", Json::Str("push_outputs".into())),
                    c,
                    g,
                    ("outputs", outputs.to_json()),
                ])
            }
            Request::Stats => Json::obj([("op", Json::Str("stats".into()))]),
            Request::Shutdown => Json::obj([("op", Json::Str("shutdown".into()))]),
        }
    }

    /// Decodes a request, reporting *why* it is invalid (the message is
    /// echoed in the `malformed`/`bad_request` error response).
    pub fn from_json(value: &Json) -> Result<Request, String> {
        let op = value
            .get("op")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| e.to_string())?;
        match op.as_str() {
            "get_profile" => Ok(Request::GetProfile {
                key: key_from_json(value)?,
            }),
            "put_profile" => {
                let key = key_from_json(value)?;
                let profile_json = value.get("profile").map_err(|e| e.to_string())?;
                let profile =
                    <Profile as FromJson>::from_json(profile_json).map_err(|e| e.to_string())?;
                Ok(Request::PutProfile { key, profile })
            }
            "query_tradeoff" => {
                let key = key_from_json(value)?;
                let max_err = value
                    .get("max_err")
                    .and_then(|v| v.as_f64())
                    .map_err(|e| e.to_string())?;
                if !max_err.is_finite() || max_err < 0.0 {
                    return Err(format!("max_err {max_err} is not a valid bound"));
                }
                let max_fraction = match value.get_opt("max_fraction") {
                    None | Some(Json::Null) => None,
                    Some(v) => {
                        let f = v.as_f64().map_err(|e| e.to_string())?;
                        if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                            return Err(format!("max_fraction {f} is not in [0, 1]"));
                        }
                        Some(f)
                    }
                };
                Ok(Request::QueryTradeoff {
                    key,
                    max_err,
                    max_fraction,
                })
            }
            "push_outputs" => {
                let key = key_from_json(value)?;
                let outputs = <Vec<f64> as FromJson>::from_json(
                    value.get("outputs").map_err(|e| e.to_string())?,
                )
                .map_err(|e| e.to_string())?;
                if outputs.iter().any(|y| !y.is_finite()) {
                    return Err("outputs contain a non-finite value".into());
                }
                Ok(Request::PushOutputs { key, outputs })
            }
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `get_profile` hit.
    Profile {
        /// Echoed key.
        key: StoreKey,
        /// Per-key sequence number of the served record.
        seq: u64,
        /// The stored profile.
        profile: Profile,
        /// Freshness metadata, when a drift monitor exists for the key.
        drift: Option<DriftStatus>,
    },
    /// `put_profile` / `push_outputs` ack. For puts, `seq` is the durable
    /// per-key sequence number; for output pushes it echoes the monitor's
    /// scored-window count.
    Ok {
        /// Sequence / progress number.
        seq: u64,
    },
    /// `query_tradeoff` result: matching points, cheapest first.
    Tradeoff {
        /// Points satisfying the predicates, sorted by ascending sample
        /// fraction then error bound (deterministic).
        matches: Vec<ProfilePoint>,
    },
    /// `stats` snapshot.
    Stats(Box<ServerStats>),
    /// Typed failure.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Acknowledges `shutdown`; the connection closes after this frame.
    Bye,
}

impl Response {
    /// Encodes the response for the wire.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Profile {
                key,
                seq,
                profile,
                drift,
            } => {
                let [c, g] = key_to_json(*key);
                Json::obj([
                    ("type", Json::Str("profile".into())),
                    c,
                    g,
                    ("seq", (*seq as usize).to_json()),
                    ("profile", ToJson::to_json(profile)),
                    ("drift", drift.to_json()),
                ])
            }
            Response::Ok { seq } => Json::obj([
                ("type", Json::Str("ok".into())),
                ("seq", (*seq as usize).to_json()),
            ]),
            Response::Tradeoff { matches } => Json::obj([
                ("type", Json::Str("tradeoff".into())),
                ("matches", matches.to_json()),
            ]),
            Response::Stats(stats) => {
                let mut obj = match ToJson::to_json(stats.as_ref()) {
                    Json::Obj(map) => map,
                    _ => unreachable!("stats encode as an object"),
                };
                obj.insert("type".into(), Json::Str("stats".into()));
                Json::Obj(obj)
            }
            Response::Error { code, message } => Json::obj([
                ("type", Json::Str("error".into())),
                ("code", Json::Str(code.as_str().into())),
                ("message", Json::Str(message.clone())),
            ]),
            Response::Bye => Json::obj([("type", Json::Str("bye".into()))]),
        }
    }

    /// Decodes a response (the client half of the codec).
    pub fn from_json(value: &Json) -> Result<Response, String> {
        let ty = value
            .get("type")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| e.to_string())?;
        match ty.as_str() {
            "profile" => Ok(Response::Profile {
                key: key_from_json(value)?,
                seq: value
                    .get("seq")
                    .and_then(|v| v.as_u64())
                    .map_err(|e| e.to_string())?,
                profile: <Profile as FromJson>::from_json(
                    value.get("profile").map_err(|e| e.to_string())?,
                )
                .map_err(|e| e.to_string())?,
                drift: match value.get_opt("drift") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        <DriftStatus as FromJson>::from_json(v).map_err(|e| e.to_string())?,
                    ),
                },
            }),
            "ok" => Ok(Response::Ok {
                seq: value
                    .get("seq")
                    .and_then(|v| v.as_u64())
                    .map_err(|e| e.to_string())?,
            }),
            "tradeoff" => Ok(Response::Tradeoff {
                matches: <Vec<ProfilePoint> as FromJson>::from_json(
                    value.get("matches").map_err(|e| e.to_string())?,
                )
                .map_err(|e| e.to_string())?,
            }),
            "stats" => Ok(Response::Stats(Box::new(
                <ServerStats as FromJson>::from_json(value).map_err(|e| e.to_string())?,
            ))),
            "error" => Ok(Response::Error {
                code: ErrorCode::parse(
                    value
                        .get("code")
                        .and_then(|v| v.as_str())
                        .map_err(|e| e.to_string())?,
                )?,
                message: value
                    .get("message")
                    .and_then(|v| v.as_str().map(str::to_string))
                    .map_err(|e| e.to_string())?,
            }),
            "bye" => Ok(Response::Bye),
            other => Err(format!("unknown response type {other:?}")),
        }
    }

    /// Shorthand for an error response.
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Error {
            code,
            message: message.into(),
        }
    }
}

/// One named example frame per request/response shape, used by the wire
/// schema golden (`tests/serve_protocol_schema.rs`) to pin the protocol:
/// any key added, removed, or re-typed shows up as a schema diff.
pub fn representative_frames() -> Vec<(&'static str, Json)> {
    use smokescreen_core::Aggregate;
    use smokescreen_degrade::InterventionSet;
    use smokescreen_video::{ObjectClass, Resolution};

    let profile = Profile {
        corpus: "example".into(),
        model: "oracle".into(),
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
        points: vec![ProfilePoint {
            set: InterventionSet::sampling(0.25)
                .with_resolution(Resolution::square(128))
                .with_restricted(&[ObjectClass::Person]),
            y_approx: 1.5,
            err_b: 0.08,
            corrected: true,
            n: 1024,
        }],
    };
    let key = StoreKey::new(0x00c5_a2e1_9f03_4b77, 0x1122_3344_5566_7788);
    let drift = DriftStatus {
        score: 2.5,
        windows_scored: 12,
        windows_flagged: 1,
        stale: true,
    };

    vec![
        ("request.get_profile", Request::GetProfile { key }.to_json()),
        (
            "request.put_profile",
            Request::PutProfile {
                key,
                profile: profile.clone(),
            }
            .to_json(),
        ),
        (
            "request.query_tradeoff",
            Request::QueryTradeoff {
                key,
                max_err: 0.1,
                max_fraction: Some(0.5),
            }
            .to_json(),
        ),
        (
            "request.push_outputs",
            Request::PushOutputs {
                key,
                outputs: vec![1.0, 2.0],
            }
            .to_json(),
        ),
        ("request.stats", Request::Stats.to_json()),
        ("request.shutdown", Request::Shutdown.to_json()),
        (
            "response.profile",
            Response::Profile {
                key,
                seq: 3,
                profile: profile.clone(),
                drift: Some(drift),
            }
            .to_json(),
        ),
        ("response.ok", Response::Ok { seq: 3 }.to_json()),
        (
            "response.tradeoff",
            Response::Tradeoff {
                matches: profile.points.clone(),
            }
            .to_json(),
        ),
        (
            "response.stats",
            Response::Stats(Box::new(ServerStats::default())).to_json(),
        ),
        (
            "response.error",
            Response::error(ErrorCode::Overloaded, "queue full").to_json(),
        ),
        ("response.bye", Response::Bye.to_json()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(json: &Json) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, json).unwrap();
        buf
    }

    #[test]
    fn frame_round_trip_and_clean_eof() {
        let json = Json::obj([("op", Json::Str("stats".into()))]);
        let mut stream = Cursor::new(frame_bytes(&json));
        assert_eq!(read_frame(&mut stream).unwrap(), Some(json));
        assert!(
            matches!(read_frame(&mut stream), Ok(None)),
            "clean EOF at a frame boundary"
        );
    }

    #[test]
    fn truncated_oversized_and_malformed_frames_are_typed() {
        // Truncated mid-prefix.
        let mut t = Cursor::new(vec![0x10, 0x00]);
        assert!(matches!(read_frame(&mut t), Err(FrameError::Truncated)));
        // Truncated mid-body.
        let mut bytes = frame_bytes(&Json::obj([("op", Json::Str("stats".into()))]));
        bytes.truncate(bytes.len() - 3);
        let mut t = Cursor::new(bytes);
        assert!(matches!(read_frame(&mut t), Err(FrameError::Truncated)));
        // Oversized claim: rejected from the prefix alone.
        let mut o = Cursor::new(((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut o),
            Err(FrameError::Oversized(n)) if n == MAX_FRAME_LEN + 1
        ));
        // Malformed JSON body.
        let body = b"{not json";
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(body);
        let mut m = Cursor::new(buf);
        assert!(matches!(read_frame(&mut m), Err(FrameError::Malformed(_))));
        // Non-UTF-8 body.
        let mut buf = 2u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut m = Cursor::new(buf);
        assert!(matches!(read_frame(&mut m), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn depth_bomb_is_malformed_not_fatal() {
        let mut body = String::new();
        for _ in 0..4096 {
            body.push('[');
        }
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(body.as_bytes());
        let mut stream = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut stream),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn requests_round_trip() {
        let key = StoreKey::new(u64::MAX - 7, 0x0123_4567_89ab_cdef);
        let reqs = [
            Request::GetProfile { key },
            Request::QueryTradeoff {
                key,
                max_err: 0.2,
                max_fraction: None,
            },
            Request::QueryTradeoff {
                key,
                max_err: 0.2,
                max_fraction: Some(0.5),
            },
            Request::PushOutputs {
                key,
                outputs: vec![0.0, 1.5, -2.25],
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let back = Request::from_json(&req.to_json()).unwrap();
            assert_eq!(req, back, "round trip preserves every field exactly");
        }
    }

    #[test]
    fn hex_ids_preserve_full_u64_precision() {
        // 2^53 + 1 is where f64 integers go lossy; hex strings must not.
        let key = StoreKey::new((1 << 53) + 1, u64::MAX);
        let json = Request::GetProfile { key }.to_json();
        let reparsed = Json::parse(&json.encode()).unwrap();
        match Request::from_json(&reparsed).unwrap() {
            Request::GetProfile { key: k } => assert_eq!(k, key),
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn invalid_requests_name_the_problem() {
        assert!(Request::from_json(&Json::Num(3.0)).is_err(), "not an object");
        assert!(
            Request::from_json(&Json::obj([("op", Json::Str("nope".into()))]))
                .unwrap_err()
                .contains("unknown op")
        );
        let bad_id = Json::obj([
            ("op", Json::Str("get_profile".into())),
            ("camera", Json::Str("xyz".into())),
            ("grid", Json::Str("0000000000000002".into())),
        ]);
        assert!(Request::from_json(&bad_id).is_err(), "short hex id");
        let bad_err = Json::obj([
            ("op", Json::Str("query_tradeoff".into())),
            ("camera", Json::Str("0000000000000001".into())),
            ("grid", Json::Str("0000000000000002".into())),
            ("max_err", Json::Num(-0.5)),
        ]);
        assert!(Request::from_json(&bad_err).is_err(), "negative bound");
    }

    #[test]
    fn responses_round_trip() {
        let frames = representative_frames();
        for (name, json) in &frames {
            if !name.starts_with("response.") {
                continue;
            }
            let resp = Response::from_json(json).unwrap();
            assert_eq!(&resp.to_json(), json, "{name} round trips");
        }
        assert!(
            Response::from_json(&Json::obj([("type", Json::Str("alien".into()))])).is_err()
        );
    }

    #[test]
    fn representative_frames_cover_every_shape() {
        let frames = representative_frames();
        assert_eq!(frames.len(), 12, "6 request + 6 response shapes");
        // Every frame fits the wire and re-parses byte-exactly.
        for (name, json) in &frames {
            let bytes = frame_bytes(json);
            assert!(bytes.len() <= 4 + MAX_FRAME_LEN, "{name} fits a frame");
            let mut stream = Cursor::new(bytes);
            assert_eq!(read_frame(&mut stream).unwrap().as_ref(), Some(json));
        }
    }
}
