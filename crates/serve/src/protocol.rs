//! Length-prefixed `rt::json` wire protocol.
//!
//! A frame is a `u32` little-endian byte length followed by exactly that
//! many bytes of UTF-8 JSON. The protocol inherits `rt::json`'s defensive
//! posture end to end: frames over [`MAX_FRAME_LEN`] are rejected before a
//! byte of the body is buffered, parse depth is capped by the parser
//! itself ([`smokescreen_rt::json::MAX_PARSE_DEPTH`]), and every decode
//! failure maps to a **typed error response** — a peer sending garbage
//! gets [`ErrorCode::Malformed`] back, never a hang, never a panic, and
//! (for recoverable damage) not even a dropped connection.
//!
//! Camera and grid identifiers are 64-bit hashes. JSON numbers are IEEE
//! doubles and silently lose integer precision above 2^53, so ids travel
//! as fixed-width 16-digit hex **strings** (`"00c5a2..."`), keeping keys
//! exact on the wire.

use std::io::{self, Read, Write};

use smokescreen_core::{Profile, ProfilePoint};
use smokescreen_rt::json::{FromJson, Json, ToJson};

use crate::store::StoreKey;

/// Largest accepted frame body (1 MiB). A length prefix beyond this is
/// answered with [`ErrorCode::Oversized`] and the connection is closed —
/// the stream position after an oversized claim cannot be resynchronized.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// How many consecutive read timeouts mid-frame are tolerated before the
/// peer is declared stalled and the frame torn. At the server's 50 ms
/// read timeout this is ~20 s — generous for a live peer, bounded for a
/// dead one (a worker can never hang forever inside one frame).
const STALL_RETRY_BUDGET: usize = 400;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// No bytes arrived within one read-timeout window at a frame
    /// boundary. Not damage: the server uses this to poll its shutdown
    /// flag between requests on an idle connection.
    Idle,
    /// The stream ended mid-frame (or a peer stalled past the retry
    /// budget). The connection is unusable.
    Truncated,
    /// The length prefix claims more than [`MAX_FRAME_LEN`] bytes.
    Oversized(usize),
    /// The body was not valid UTF-8 JSON (including depth bombs, which
    /// the parser rejects at `MAX_PARSE_DEPTH`). The stream itself is
    /// still framed correctly, so the connection can continue.
    Malformed(String),
    /// Transport error.
    Io(io::Error),
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream at a frame
/// boundary; see [`FrameError`] for every other outcome.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, FrameError> {
    let mut len_buf = [0u8; 4];
    match fill(r, &mut len_buf, true)? {
        Fill::CleanEof => return Ok(None),
        Fill::Idle => return Err(FrameError::Idle),
        Fill::Full => {}
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    let mut body = vec![0u8; len];
    match fill(r, &mut body, false)? {
        Fill::Full => {}
        Fill::CleanEof | Fill::Idle => unreachable!("fill only reports these at start"),
    }
    let text = std::str::from_utf8(&body)
        .map_err(|_| FrameError::Malformed("frame body is not UTF-8".into()))?;
    match Json::parse(text) {
        Ok(json) => Ok(Some(json)),
        Err(e) => Err(FrameError::Malformed(e.to_string())),
    }
}

/// Writes one frame (length prefix + encoded JSON) and flushes.
pub fn write_frame(w: &mut impl Write, json: &Json) -> io::Result<()> {
    let body = json.encode();
    debug_assert!(body.len() <= MAX_FRAME_LEN, "server produced oversized frame");
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(body.as_bytes());
    w.write_all(&buf)?;
    w.flush()
}

enum Fill {
    Full,
    /// EOF before the first byte (only when `boundary`).
    CleanEof,
    /// Timeout before the first byte (only when `boundary`).
    Idle,
}

/// Fills `buf` completely, tolerating short reads. At a frame `boundary`,
/// EOF/timeout before any byte is a clean outcome; once the first byte of
/// a frame has arrived, the peer owes the rest — EOF is truncation and
/// stalls are bounded by [`STALL_RETRY_BUDGET`].
fn fill(r: &mut impl Read, buf: &mut [u8], boundary: bool) -> Result<Fill, FrameError> {
    let mut filled = 0usize;
    let mut stalls = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if boundary && filled == 0 {
                    Ok(Fill::CleanEof)
                } else {
                    Err(FrameError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if boundary && filled == 0 {
                    return Ok(Fill::Idle);
                }
                stalls += 1;
                if stalls > STALL_RETRY_BUDGET {
                    return Err(FrameError::Truncated);
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Fill::Full)
}

/// Typed error taxonomy carried in `error` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame body was not parseable JSON or not a valid request.
    Malformed,
    /// The frame length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized,
    /// The request was well-formed JSON but semantically invalid
    /// (unknown op, bad predicate, out-of-range field).
    BadRequest,
    /// No record under the requested key.
    NotFound,
    /// The admission queue was full; retry later.
    Overloaded,
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// The store failed the operation (I/O error).
    Store,
    /// The record exists but is quarantined pending repair: the bytes on
    /// disk failed their checksum and the scrubber has not healed them
    /// yet. Retryable — repair usually lands within a scrub cadence.
    Quarantined,
}

impl ErrorCode {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Oversized => "oversized",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::NotFound => "not_found",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Store => "store",
            ErrorCode::Quarantined => "quarantined",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Result<ErrorCode, String> {
        match s {
            "malformed" => Ok(ErrorCode::Malformed),
            "oversized" => Ok(ErrorCode::Oversized),
            "bad_request" => Ok(ErrorCode::BadRequest),
            "not_found" => Ok(ErrorCode::NotFound),
            "overloaded" => Ok(ErrorCode::Overloaded),
            "shutting_down" => Ok(ErrorCode::ShuttingDown),
            "store" => Ok(ErrorCode::Store),
            "quarantined" => Ok(ErrorCode::Quarantined),
            other => Err(format!("unknown error code {other:?}")),
        }
    }
}

/// Profile-freshness metadata served alongside profiles (the
/// `core::streaming` seam: drift scored by `core::similarity` over
/// outputs pushed via `push_outputs`).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftStatus {
    /// Largest drift score observed across scored windows.
    pub score: f64,
    /// Windows scored so far.
    pub windows_scored: u64,
    /// Windows whose score crossed the drift threshold.
    pub windows_flagged: u64,
    /// Latched staleness flag: once a window crosses the threshold the
    /// profile is stale until re-profiled.
    pub stale: bool,
    /// Multiplicative staleness widening factor (`>= 1.0`): how much a
    /// consumer should inflate the profile's error bounds while the
    /// latch is set. `1.0` while fresh; tracks the worst scored window
    /// relative to the drift threshold once stale.
    pub widen: f64,
}

impl ToJson for DriftStatus {
    fn to_json(&self) -> Json {
        Json::obj([
            ("score", self.score.to_json()),
            ("windows_scored", (self.windows_scored as usize).to_json()),
            ("windows_flagged", (self.windows_flagged as usize).to_json()),
            ("stale", self.stale.to_json()),
            ("widen", self.widen.to_json()),
        ])
    }
}

impl FromJson for DriftStatus {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        Ok(DriftStatus {
            score: f64::from_json(value.get("score")?)?,
            windows_scored: value.get("windows_scored")?.as_u64()?,
            windows_flagged: value.get("windows_flagged")?.as_u64()?,
            stale: bool::from_json(value.get("stale")?)?,
            widen: f64::from_json(value.get("widen")?)?,
        })
    }
}

/// Stamps a deterministic request id onto an encoded request frame.
///
/// The rid is the retry-idempotence handle: a client derives it as a pure
/// function of `(client, op, attempt)` so every resend is distinguishable
/// on the wire, and the server's [`NetFaultPlan`] keys its drop / delay /
/// partial / reset decisions on it — making net chaos a pure function of
/// the request stream rather than of timing. Requests without a rid
/// (control frames like `stats` / `shutdown`) are never net-faulted.
///
/// [`NetFaultPlan`]: smokescreen_rt::fault::NetFaultPlan
pub fn stamp_rid(request: &Json, rid: u64) -> Json {
    let mut obj = match request {
        Json::Obj(map) => map.clone(),
        _ => unreachable!("requests encode as objects"),
    };
    obj.insert("rid".into(), Json::Str(format!("{rid:016x}")));
    Json::Obj(obj)
}

/// Extracts the request id stamped by [`stamp_rid`], if any. Malformed
/// rids read as absent: the frame still gets a normal (fault-free)
/// answer, which is the conservative choice for a field only the chaos
/// plan consumes.
pub fn frame_rid(request: &Json) -> Option<u64> {
    let s = request.get_opt("rid")?.as_str().ok()?;
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Flat counter snapshot served by `STATS`.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered (any response type).
    pub requests: u64,
    /// Connections rejected by admission control.
    pub overload_rejections: u64,
    /// Frames answered with `malformed`/`oversized` errors.
    pub protocol_errors: u64,
    /// Live records in the store.
    pub live_records: u64,
    /// Data segment bytes.
    pub data_bytes: u64,
    /// Durable puts.
    pub puts: u64,
    /// Gets (hits + misses + not-found).
    pub gets: u64,
    /// Gets served from the read cache.
    pub cache_hits: u64,
    /// Gets that went to disk.
    pub cache_misses: u64,
    /// Records quarantined since open (lazy reads + compaction).
    pub quarantined_records: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Per-key drift monitors currently alive.
    pub drift_monitors: u64,
    /// Monitors whose staleness flag is latched.
    pub stale_monitors: u64,
    /// Retried puts absorbed by the idempotence guard (acked without
    /// re-applying).
    pub deduped_puts: u64,
    /// Injected disk write faults observed at the append seam.
    pub disk_write_faults: u64,
    /// Injected disk read faults observed at the payload-read seam.
    pub disk_read_faults: u64,
    /// Injected net faults fired across all connections.
    pub net_faults: u64,
    /// Torn data-segment tails repaired by truncation before an append.
    pub tail_repairs: u64,
    /// Quarantined records healed (re-put, direct re-read, or log
    /// fallback).
    pub repaired_records: u64,
    /// Live records whose checksums the scrubber has verified.
    pub scrubbed_records: u64,
    /// Full scrub passes completed over the live map.
    pub scrub_passes: u64,
    /// Records quarantined right now, awaiting repair.
    pub quarantine_pending: u64,
    /// Answers served while quarantined/degraded: gets refused with
    /// `quarantined` plus profiles served with the `degraded` flag set.
    pub degraded_answers: u64,
    /// Keys currently enqueued for re-profiling (drift latched or
    /// quarantine observed).
    pub repair_queue_len: u64,
    /// The repair queue itself: `"camera:grid"` hex pairs, sorted,
    /// truncated to [`REPAIR_QUEUE_LIST_CAP`] entries (`repair_queue_len`
    /// is the true length).
    pub repair_queue: Vec<String>,
}

/// Most repair-queue keys listed inline in a `stats` response.
pub const REPAIR_QUEUE_LIST_CAP: usize = 32;

impl ServerStats {
    const FIELDS: [&'static str; 25] = [
        "connections",
        "requests",
        "overload_rejections",
        "protocol_errors",
        "live_records",
        "data_bytes",
        "puts",
        "gets",
        "cache_hits",
        "cache_misses",
        "quarantined_records",
        "compactions",
        "drift_monitors",
        "stale_monitors",
        "deduped_puts",
        "disk_write_faults",
        "disk_read_faults",
        "net_faults",
        "tail_repairs",
        "repaired_records",
        "scrubbed_records",
        "scrub_passes",
        "quarantine_pending",
        "degraded_answers",
        "repair_queue_len",
    ];

    fn field(&self, name: &str) -> u64 {
        match name {
            "connections" => self.connections,
            "requests" => self.requests,
            "overload_rejections" => self.overload_rejections,
            "protocol_errors" => self.protocol_errors,
            "live_records" => self.live_records,
            "data_bytes" => self.data_bytes,
            "puts" => self.puts,
            "gets" => self.gets,
            "cache_hits" => self.cache_hits,
            "cache_misses" => self.cache_misses,
            "quarantined_records" => self.quarantined_records,
            "compactions" => self.compactions,
            "drift_monitors" => self.drift_monitors,
            "stale_monitors" => self.stale_monitors,
            "deduped_puts" => self.deduped_puts,
            "disk_write_faults" => self.disk_write_faults,
            "disk_read_faults" => self.disk_read_faults,
            "net_faults" => self.net_faults,
            "tail_repairs" => self.tail_repairs,
            "repaired_records" => self.repaired_records,
            "scrubbed_records" => self.scrubbed_records,
            "scrub_passes" => self.scrub_passes,
            "quarantine_pending" => self.quarantine_pending,
            "degraded_answers" => self.degraded_answers,
            "repair_queue_len" => self.repair_queue_len,
            _ => unreachable!("field list is closed"),
        }
    }

    fn field_mut(&mut self, name: &str) -> &mut u64 {
        match name {
            "connections" => &mut self.connections,
            "requests" => &mut self.requests,
            "overload_rejections" => &mut self.overload_rejections,
            "protocol_errors" => &mut self.protocol_errors,
            "live_records" => &mut self.live_records,
            "data_bytes" => &mut self.data_bytes,
            "puts" => &mut self.puts,
            "gets" => &mut self.gets,
            "cache_hits" => &mut self.cache_hits,
            "cache_misses" => &mut self.cache_misses,
            "quarantined_records" => &mut self.quarantined_records,
            "compactions" => &mut self.compactions,
            "drift_monitors" => &mut self.drift_monitors,
            "stale_monitors" => &mut self.stale_monitors,
            "deduped_puts" => &mut self.deduped_puts,
            "disk_write_faults" => &mut self.disk_write_faults,
            "disk_read_faults" => &mut self.disk_read_faults,
            "net_faults" => &mut self.net_faults,
            "tail_repairs" => &mut self.tail_repairs,
            "repaired_records" => &mut self.repaired_records,
            "scrubbed_records" => &mut self.scrubbed_records,
            "scrub_passes" => &mut self.scrub_passes,
            "quarantine_pending" => &mut self.quarantine_pending,
            "degraded_answers" => &mut self.degraded_answers,
            "repair_queue_len" => &mut self.repair_queue_len,
            _ => unreachable!("field list is closed"),
        }
    }
}

impl ToJson for ServerStats {
    fn to_json(&self) -> Json {
        let mut obj = match Json::obj(
            Self::FIELDS
                .iter()
                .map(|name| (*name, (self.field(name) as usize).to_json())),
        ) {
            Json::Obj(map) => map,
            _ => unreachable!("obj builder returns an object"),
        };
        obj.insert("repair_queue".into(), self.repair_queue.to_json());
        Json::Obj(obj)
    }
}

impl FromJson for ServerStats {
    fn from_json(value: &Json) -> smokescreen_rt::json::Result<Self> {
        let mut stats = ServerStats::default();
        for name in Self::FIELDS {
            *stats.field_mut(name) = value.get(name)?.as_u64()?;
        }
        stats.repair_queue = <Vec<String> as FromJson>::from_json(value.get("repair_queue")?)?;
        Ok(stats)
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Fetch the profile (and freshness metadata) for one key.
    GetProfile {
        /// Store key.
        key: StoreKey,
    },
    /// Durably store a profile; the `ok` response acks the sync.
    PutProfile {
        /// Store key.
        key: StoreKey,
        /// The profile to store.
        profile: Profile,
        /// Idempotence guard for retried puts. When set, the put only
        /// applies if it would land exactly at this per-key sequence
        /// number; a retry of an already-applied put (store seq `>=`
        /// expected) is acked with the expected seq **without**
        /// re-applying, so a re-sent `put_profile` can never
        /// double-apply. `None` keeps the PR 9 last-writer-wins
        /// semantics.
        expected_seq: Option<u64>,
    },
    /// Tradeoff query: profiled points satisfying the error-bound /
    /// degradation-budget predicates, cheapest first.
    QueryTradeoff {
        /// Store key.
        key: StoreKey,
        /// Upper bound on acceptable `err_b`.
        max_err: f64,
        /// Optional upper bound on the sample fraction (a degradation
        /// budget: "spend at most this much capture").
        max_fraction: Option<f64>,
        /// Optional per-window transmission byte budget (`camera::cost`):
        /// points whose shipped bytes over the canonical costing window
        /// exceed this are filtered out.
        max_bytes: Option<u64>,
        /// Optional per-window capture+encode+transmit energy budget in
        /// joules (`camera::cost`).
        max_energy_j: Option<f64>,
    },
    /// Run one bounded scrub step over the store (admin/chaos surface:
    /// lets a client drive the quarantine to empty deterministically
    /// instead of waiting on the background cadence).
    Scrub {
        /// Max live records to verify this step.
        budget: u64,
    },
    /// Feed fresh model outputs into the key's drift monitor.
    PushOutputs {
        /// Store key.
        key: StoreKey,
        /// Model outputs in stream order.
        outputs: Vec<f64>,
    },
    /// Counter snapshot.
    Stats,
    /// Graceful shutdown: flush + compact, then `bye`.
    Shutdown,
}

fn key_to_json(key: StoreKey) -> [(&'static str, Json); 2] {
    [
        ("camera", Json::Str(format!("{:016x}", key.camera))),
        ("grid", Json::Str(format!("{:016x}", key.grid))),
    ]
}

fn key_from_json(value: &Json) -> Result<StoreKey, String> {
    let parse = |field: &str| -> Result<u64, String> {
        let s = value
            .get(field)
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| e.to_string())?;
        if s.len() != 16 {
            return Err(format!("{field} id must be 16 hex digits, got {s:?}"));
        }
        u64::from_str_radix(&s, 16).map_err(|_| format!("{field} id {s:?} is not hex"))
    };
    Ok(StoreKey::new(parse("camera")?, parse("grid")?))
}

impl Request {
    /// Encodes the request for the wire.
    pub fn to_json(&self) -> Json {
        match self {
            Request::GetProfile { key } => {
                let [c, g] = key_to_json(*key);
                Json::obj([("op", Json::Str("get_profile".into())), c, g])
            }
            Request::PutProfile {
                key,
                profile,
                expected_seq,
            } => {
                let [c, g] = key_to_json(*key);
                Json::obj([
                    ("op", Json::Str("put_profile".into())),
                    c,
                    g,
                    ("profile", ToJson::to_json(profile)),
                    (
                        "expected_seq",
                        match expected_seq {
                            Some(seq) => (*seq as usize).to_json(),
                            None => Json::Null,
                        },
                    ),
                ])
            }
            Request::QueryTradeoff {
                key,
                max_err,
                max_fraction,
                max_bytes,
                max_energy_j,
            } => {
                let [c, g] = key_to_json(*key);
                Json::obj([
                    ("op", Json::Str("query_tradeoff".into())),
                    c,
                    g,
                    ("max_err", max_err.to_json()),
                    ("max_fraction", max_fraction.to_json()),
                    (
                        "max_bytes",
                        match max_bytes {
                            Some(b) => (*b as usize).to_json(),
                            None => Json::Null,
                        },
                    ),
                    ("max_energy_j", max_energy_j.to_json()),
                ])
            }
            Request::Scrub { budget } => Json::obj([
                ("op", Json::Str("scrub".into())),
                ("budget", (*budget as usize).to_json()),
            ]),
            Request::PushOutputs { key, outputs } => {
                let [c, g] = key_to_json(*key);
                Json::obj([
                    ("op", Json::Str("push_outputs".into())),
                    c,
                    g,
                    ("outputs", outputs.to_json()),
                ])
            }
            Request::Stats => Json::obj([("op", Json::Str("stats".into()))]),
            Request::Shutdown => Json::obj([("op", Json::Str("shutdown".into()))]),
        }
    }

    /// Decodes a request, reporting *why* it is invalid (the message is
    /// echoed in the `malformed`/`bad_request` error response).
    pub fn from_json(value: &Json) -> Result<Request, String> {
        let op = value
            .get("op")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| e.to_string())?;
        match op.as_str() {
            "get_profile" => Ok(Request::GetProfile {
                key: key_from_json(value)?,
            }),
            "put_profile" => {
                let key = key_from_json(value)?;
                let profile_json = value.get("profile").map_err(|e| e.to_string())?;
                let profile =
                    <Profile as FromJson>::from_json(profile_json).map_err(|e| e.to_string())?;
                let expected_seq = match value.get_opt("expected_seq") {
                    None | Some(Json::Null) => None,
                    Some(v) => {
                        let seq = v.as_u64().map_err(|e| e.to_string())?;
                        if seq == 0 {
                            return Err("expected_seq 0 is reserved (seqs start at 1)".into());
                        }
                        Some(seq)
                    }
                };
                Ok(Request::PutProfile {
                    key,
                    profile,
                    expected_seq,
                })
            }
            "query_tradeoff" => {
                let key = key_from_json(value)?;
                let max_err = value
                    .get("max_err")
                    .and_then(|v| v.as_f64())
                    .map_err(|e| e.to_string())?;
                if !max_err.is_finite() || max_err < 0.0 {
                    return Err(format!("max_err {max_err} is not a valid bound"));
                }
                let max_fraction = match value.get_opt("max_fraction") {
                    None | Some(Json::Null) => None,
                    Some(v) => {
                        let f = v.as_f64().map_err(|e| e.to_string())?;
                        if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                            return Err(format!("max_fraction {f} is not in [0, 1]"));
                        }
                        Some(f)
                    }
                };
                let max_bytes = match value.get_opt("max_bytes") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_u64().map_err(|e| e.to_string())?),
                };
                let max_energy_j = match value.get_opt("max_energy_j") {
                    None | Some(Json::Null) => None,
                    Some(v) => {
                        let j = v.as_f64().map_err(|e| e.to_string())?;
                        if !j.is_finite() || j < 0.0 {
                            return Err(format!("max_energy_j {j} is not a valid budget"));
                        }
                        Some(j)
                    }
                };
                Ok(Request::QueryTradeoff {
                    key,
                    max_err,
                    max_fraction,
                    max_bytes,
                    max_energy_j,
                })
            }
            "scrub" => {
                let budget = value
                    .get("budget")
                    .and_then(|v| v.as_u64())
                    .map_err(|e| e.to_string())?;
                if budget == 0 {
                    return Err("scrub budget must be nonzero".into());
                }
                Ok(Request::Scrub { budget })
            }
            "push_outputs" => {
                let key = key_from_json(value)?;
                let outputs = <Vec<f64> as FromJson>::from_json(
                    value.get("outputs").map_err(|e| e.to_string())?,
                )
                .map_err(|e| e.to_string())?;
                if outputs.iter().any(|y| !y.is_finite()) {
                    return Err("outputs contain a non-finite value".into());
                }
                Ok(Request::PushOutputs { key, outputs })
            }
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `get_profile` hit.
    Profile {
        /// Echoed key.
        key: StoreKey,
        /// Per-key sequence number of the served record.
        seq: u64,
        /// The stored profile.
        profile: Profile,
        /// Freshness metadata, when a drift monitor exists for the key.
        drift: Option<DriftStatus>,
        /// Latched drift staleness, surfaced at the top level so clients
        /// need not inspect `drift`. A stale profile is still served —
        /// intentional, bounded degradation — but its error bounds
        /// should be widened by `drift.widen` and the key sits in the
        /// repair queue until re-profiled.
        stale: bool,
        /// Degraded-mode marker: `true` while any part of the store is
        /// quarantined pending repair. The answer itself is verified
        /// bytes; the flag tells the client the serving context is
        /// running under widened staleness until the scrubber drains.
        degraded: bool,
    },
    /// `put_profile` / `push_outputs` ack. For puts, `seq` is the durable
    /// per-key sequence number; for output pushes it echoes the monitor's
    /// scored-window count.
    Ok {
        /// Sequence / progress number.
        seq: u64,
    },
    /// `query_tradeoff` result: matching points, cheapest first.
    Tradeoff {
        /// Points satisfying the predicates, sorted by ascending sample
        /// fraction then error bound (deterministic).
        matches: Vec<ProfilePoint>,
    },
    /// `stats` snapshot.
    Stats(Box<ServerStats>),
    /// `scrub` step report (mirrors `store::ScrubReport`).
    Scrub {
        /// Live records examined this step.
        scanned: u64,
        /// Records whose checksums verified clean.
        verified: u64,
        /// Quarantined records healed (direct re-read or log fallback).
        repaired: u64,
        /// Records newly quarantined by this step's verify pass.
        quarantined: u64,
        /// Quarantine backlog after the step.
        unrepaired: u64,
        /// Whether the verify cursor wrapped (one full pass complete).
        wrapped: bool,
    },
    /// Typed failure.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Acknowledges `shutdown`; the connection closes after this frame.
    Bye,
}

impl Response {
    /// Encodes the response for the wire.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Profile {
                key,
                seq,
                profile,
                drift,
                stale,
                degraded,
            } => {
                let [c, g] = key_to_json(*key);
                Json::obj([
                    ("type", Json::Str("profile".into())),
                    c,
                    g,
                    ("seq", (*seq as usize).to_json()),
                    ("profile", ToJson::to_json(profile)),
                    ("drift", drift.to_json()),
                    ("stale", stale.to_json()),
                    ("degraded", degraded.to_json()),
                ])
            }
            Response::Ok { seq } => Json::obj([
                ("type", Json::Str("ok".into())),
                ("seq", (*seq as usize).to_json()),
            ]),
            Response::Tradeoff { matches } => Json::obj([
                ("type", Json::Str("tradeoff".into())),
                ("matches", matches.to_json()),
            ]),
            Response::Stats(stats) => {
                let mut obj = match ToJson::to_json(stats.as_ref()) {
                    Json::Obj(map) => map,
                    _ => unreachable!("stats encode as an object"),
                };
                obj.insert("type".into(), Json::Str("stats".into()));
                Json::Obj(obj)
            }
            Response::Error { code, message } => Json::obj([
                ("type", Json::Str("error".into())),
                ("code", Json::Str(code.as_str().into())),
                ("message", Json::Str(message.clone())),
            ]),
            Response::Scrub {
                scanned,
                verified,
                repaired,
                quarantined,
                unrepaired,
                wrapped,
            } => Json::obj([
                ("type", Json::Str("scrub".into())),
                ("scanned", (*scanned as usize).to_json()),
                ("verified", (*verified as usize).to_json()),
                ("repaired", (*repaired as usize).to_json()),
                ("quarantined", (*quarantined as usize).to_json()),
                ("unrepaired", (*unrepaired as usize).to_json()),
                ("wrapped", wrapped.to_json()),
            ]),
            Response::Bye => Json::obj([("type", Json::Str("bye".into()))]),
        }
    }

    /// Decodes a response (the client half of the codec).
    pub fn from_json(value: &Json) -> Result<Response, String> {
        let ty = value
            .get("type")
            .and_then(|v| v.as_str().map(str::to_string))
            .map_err(|e| e.to_string())?;
        match ty.as_str() {
            "profile" => Ok(Response::Profile {
                key: key_from_json(value)?,
                seq: value
                    .get("seq")
                    .and_then(|v| v.as_u64())
                    .map_err(|e| e.to_string())?,
                profile: <Profile as FromJson>::from_json(
                    value.get("profile").map_err(|e| e.to_string())?,
                )
                .map_err(|e| e.to_string())?,
                drift: match value.get_opt("drift") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        <DriftStatus as FromJson>::from_json(v).map_err(|e| e.to_string())?,
                    ),
                },
                stale: value
                    .get("stale")
                    .and_then(bool::from_json)
                    .map_err(|e| e.to_string())?,
                degraded: value
                    .get("degraded")
                    .and_then(bool::from_json)
                    .map_err(|e| e.to_string())?,
            }),
            "ok" => Ok(Response::Ok {
                seq: value
                    .get("seq")
                    .and_then(|v| v.as_u64())
                    .map_err(|e| e.to_string())?,
            }),
            "tradeoff" => Ok(Response::Tradeoff {
                matches: <Vec<ProfilePoint> as FromJson>::from_json(
                    value.get("matches").map_err(|e| e.to_string())?,
                )
                .map_err(|e| e.to_string())?,
            }),
            "stats" => Ok(Response::Stats(Box::new(
                <ServerStats as FromJson>::from_json(value).map_err(|e| e.to_string())?,
            ))),
            "error" => Ok(Response::Error {
                code: ErrorCode::parse(
                    value
                        .get("code")
                        .and_then(|v| v.as_str())
                        .map_err(|e| e.to_string())?,
                )?,
                message: value
                    .get("message")
                    .and_then(|v| v.as_str().map(str::to_string))
                    .map_err(|e| e.to_string())?,
            }),
            "scrub" => {
                let count = |field: &str| -> Result<u64, String> {
                    value
                        .get(field)
                        .and_then(|v| v.as_u64())
                        .map_err(|e| e.to_string())
                };
                Ok(Response::Scrub {
                    scanned: count("scanned")?,
                    verified: count("verified")?,
                    repaired: count("repaired")?,
                    quarantined: count("quarantined")?,
                    unrepaired: count("unrepaired")?,
                    wrapped: value
                        .get("wrapped")
                        .and_then(bool::from_json)
                        .map_err(|e| e.to_string())?,
                })
            }
            "bye" => Ok(Response::Bye),
            other => Err(format!("unknown response type {other:?}")),
        }
    }

    /// Shorthand for an error response.
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Error {
            code,
            message: message.into(),
        }
    }
}

/// One named example frame per request/response shape, used by the wire
/// schema golden (`tests/serve_protocol_schema.rs`) to pin the protocol:
/// any key added, removed, or re-typed shows up as a schema diff.
pub fn representative_frames() -> Vec<(&'static str, Json)> {
    use smokescreen_core::Aggregate;
    use smokescreen_degrade::InterventionSet;
    use smokescreen_video::{ObjectClass, Resolution};

    let profile = Profile {
        corpus: "example".into(),
        model: "oracle".into(),
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
        points: vec![ProfilePoint {
            set: InterventionSet::sampling(0.25)
                .with_resolution(Resolution::square(128))
                .with_restricted(&[ObjectClass::Person]),
            y_approx: 1.5,
            err_b: 0.08,
            corrected: true,
            n: 1024,
        }],
    };
    let key = StoreKey::new(0x00c5_a2e1_9f03_4b77, 0x1122_3344_5566_7788);
    let drift = DriftStatus {
        score: 2.5,
        windows_scored: 12,
        windows_flagged: 1,
        stale: true,
        widen: 1.25,
    };

    vec![
        ("request.get_profile", Request::GetProfile { key }.to_json()),
        (
            "request.put_profile",
            Request::PutProfile {
                key,
                profile: profile.clone(),
                expected_seq: Some(4),
            }
            .to_json(),
        ),
        (
            "request.query_tradeoff",
            Request::QueryTradeoff {
                key,
                max_err: 0.1,
                max_fraction: Some(0.5),
                max_bytes: Some(1 << 20),
                max_energy_j: Some(40.0),
            }
            .to_json(),
        ),
        ("request.scrub", Request::Scrub { budget: 64 }.to_json()),
        (
            "request.push_outputs",
            Request::PushOutputs {
                key,
                outputs: vec![1.0, 2.0],
            }
            .to_json(),
        ),
        ("request.stats", Request::Stats.to_json()),
        ("request.shutdown", Request::Shutdown.to_json()),
        (
            "response.profile",
            Response::Profile {
                key,
                seq: 3,
                profile: profile.clone(),
                drift: Some(drift),
                stale: true,
                degraded: true,
            }
            .to_json(),
        ),
        ("response.ok", Response::Ok { seq: 3 }.to_json()),
        (
            "response.tradeoff",
            Response::Tradeoff {
                matches: profile.points.clone(),
            }
            .to_json(),
        ),
        (
            "response.stats",
            Response::Stats(Box::new(ServerStats {
                repair_queue: vec!["00c5a2e19f034b77:1122334455667788".into()],
                repair_queue_len: 1,
                ..ServerStats::default()
            }))
            .to_json(),
        ),
        (
            "response.scrub",
            Response::Scrub {
                scanned: 64,
                verified: 63,
                repaired: 2,
                quarantined: 1,
                unrepaired: 0,
                wrapped: true,
            }
            .to_json(),
        ),
        (
            "response.error",
            Response::error(ErrorCode::Overloaded, "queue full").to_json(),
        ),
        ("response.bye", Response::Bye.to_json()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(json: &Json) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, json).unwrap();
        buf
    }

    #[test]
    fn frame_round_trip_and_clean_eof() {
        let json = Json::obj([("op", Json::Str("stats".into()))]);
        let mut stream = Cursor::new(frame_bytes(&json));
        assert_eq!(read_frame(&mut stream).unwrap(), Some(json));
        assert!(
            matches!(read_frame(&mut stream), Ok(None)),
            "clean EOF at a frame boundary"
        );
    }

    #[test]
    fn truncated_oversized_and_malformed_frames_are_typed() {
        // Truncated mid-prefix.
        let mut t = Cursor::new(vec![0x10, 0x00]);
        assert!(matches!(read_frame(&mut t), Err(FrameError::Truncated)));
        // Truncated mid-body.
        let mut bytes = frame_bytes(&Json::obj([("op", Json::Str("stats".into()))]));
        bytes.truncate(bytes.len() - 3);
        let mut t = Cursor::new(bytes);
        assert!(matches!(read_frame(&mut t), Err(FrameError::Truncated)));
        // Oversized claim: rejected from the prefix alone.
        let mut o = Cursor::new(((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut o),
            Err(FrameError::Oversized(n)) if n == MAX_FRAME_LEN + 1
        ));
        // Malformed JSON body.
        let body = b"{not json";
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(body);
        let mut m = Cursor::new(buf);
        assert!(matches!(read_frame(&mut m), Err(FrameError::Malformed(_))));
        // Non-UTF-8 body.
        let mut buf = 2u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut m = Cursor::new(buf);
        assert!(matches!(read_frame(&mut m), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn depth_bomb_is_malformed_not_fatal() {
        let mut body = String::new();
        for _ in 0..4096 {
            body.push('[');
        }
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(body.as_bytes());
        let mut stream = Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut stream),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn requests_round_trip() {
        let key = StoreKey::new(u64::MAX - 7, 0x0123_4567_89ab_cdef);
        let reqs = [
            Request::GetProfile { key },
            Request::QueryTradeoff {
                key,
                max_err: 0.2,
                max_fraction: None,
                max_bytes: None,
                max_energy_j: None,
            },
            Request::QueryTradeoff {
                key,
                max_err: 0.2,
                max_fraction: Some(0.5),
                max_bytes: Some(4096),
                max_energy_j: Some(2.5),
            },
            Request::PushOutputs {
                key,
                outputs: vec![0.0, 1.5, -2.25],
            },
            Request::Scrub { budget: 7 },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let back = Request::from_json(&req.to_json()).unwrap();
            assert_eq!(req, back, "round trip preserves every field exactly");
        }
    }

    #[test]
    fn hex_ids_preserve_full_u64_precision() {
        // 2^53 + 1 is where f64 integers go lossy; hex strings must not.
        let key = StoreKey::new((1 << 53) + 1, u64::MAX);
        let json = Request::GetProfile { key }.to_json();
        let reparsed = Json::parse(&json.encode()).unwrap();
        match Request::from_json(&reparsed).unwrap() {
            Request::GetProfile { key: k } => assert_eq!(k, key),
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn rid_stamp_survives_the_wire_and_decode_ignores_it() {
        let key = StoreKey::new(1, 2);
        let req = Request::PutProfile {
            key,
            profile: Profile {
                corpus: "c".into(),
                model: "m".into(),
                class: smokescreen_video::ObjectClass::Car,
                aggregate: smokescreen_core::Aggregate::Avg,
                delta: 0.05,
                points: vec![],
            },
            expected_seq: Some(12345),
        };
        let rid = u64::MAX - 3;
        let stamped = stamp_rid(&req.to_json(), rid);
        let reparsed = Json::parse(&stamped.encode()).unwrap();
        assert_eq!(frame_rid(&reparsed), Some(rid), "full u64 rid survives");
        // The rid is transport metadata: request decode is oblivious and
        // the retried put's idempotence guard survives untouched.
        match Request::from_json(&reparsed).unwrap() {
            Request::PutProfile { expected_seq, .. } => {
                assert_eq!(expected_seq, Some(12345));
            }
            other => panic!("wrong request: {other:?}"),
        }
        assert_eq!(frame_rid(&req.to_json()), None, "unstamped frames have no rid");
        assert_eq!(
            frame_rid(&Json::obj([("rid", Json::Str("zz".into()))])),
            None,
            "malformed rids read as absent"
        );
    }

    #[test]
    fn invalid_requests_name_the_problem() {
        assert!(Request::from_json(&Json::Num(3.0)).is_err(), "not an object");
        assert!(
            Request::from_json(&Json::obj([("op", Json::Str("nope".into()))]))
                .unwrap_err()
                .contains("unknown op")
        );
        let bad_id = Json::obj([
            ("op", Json::Str("get_profile".into())),
            ("camera", Json::Str("xyz".into())),
            ("grid", Json::Str("0000000000000002".into())),
        ]);
        assert!(Request::from_json(&bad_id).is_err(), "short hex id");
        let bad_err = Json::obj([
            ("op", Json::Str("query_tradeoff".into())),
            ("camera", Json::Str("0000000000000001".into())),
            ("grid", Json::Str("0000000000000002".into())),
            ("max_err", Json::Num(-0.5)),
        ]);
        assert!(Request::from_json(&bad_err).is_err(), "negative bound");
    }

    #[test]
    fn responses_round_trip() {
        let frames = representative_frames();
        for (name, json) in &frames {
            if !name.starts_with("response.") {
                continue;
            }
            let resp = Response::from_json(json).unwrap();
            assert_eq!(&resp.to_json(), json, "{name} round trips");
        }
        assert!(
            Response::from_json(&Json::obj([("type", Json::Str("alien".into()))])).is_err()
        );
    }

    #[test]
    fn representative_frames_cover_every_shape() {
        let frames = representative_frames();
        assert_eq!(frames.len(), 14, "7 request + 7 response shapes");
        // Every frame fits the wire and re-parses byte-exactly.
        for (name, json) in &frames {
            let bytes = frame_bytes(json);
            assert!(bytes.len() <= 4 + MAX_FRAME_LEN, "{name} fits a frame");
            let mut stream = Cursor::new(bytes);
            assert_eq!(read_frame(&mut stream).unwrap().as_ref(), Some(json));
        }
    }
}
