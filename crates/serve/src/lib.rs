//! `smokescreen-serve` — the fleet-scale profile-serving daemon.
//!
//! Every PR before this one hardened a *batch* pipeline: generate a
//! profile, write CSVs, exit. This crate turns the reproduction into a
//! long-running system serving tradeoff-profile queries for a whole
//! camera fleet:
//!
//! * [`store`] — an **indexed columnar on-disk profile store** grown out
//!   of `rt::journal`: the same framing/checksum/atomic-repair contract
//!   (append + `sync_data`, temp-file + rename, quarantine-never-panic),
//!   extended with a fixed-width index segment for O(1) reopen, a
//!   read-side record cache, and key-ordered compaction. Records are
//!   keyed by `camera_id × grid` — one entry per profiled `(f, p, c)`
//!   grid per camera.
//! * [`protocol`] — a length-prefixed `rt::json` wire protocol
//!   (`GET_PROFILE`, `PUT_PROFILE`, `QUERY_TRADEOFF`, `PUSH_OUTPUTS`,
//!   `STATS`, `SHUTDOWN`) with a typed error taxonomy. Malformed,
//!   oversized, and depth-bombed frames get error *responses*, never a
//!   hang or a panic.
//! * [`server`] — a thread-per-core worker daemon on the persistent
//!   `rt::pool`: one acceptor task feeding a bounded admission queue
//!   (overload is a typed rejection, not an unbounded backlog), N worker
//!   tasks each owning a connection at a time, and a graceful shutdown
//!   that flushes and compacts the store so a clean stop always leaves
//!   the canonical key-ordered on-disk layout.
//!
//! Determinism carries over from the batch path: the *final* store bytes
//! after a graceful shutdown are a pure function of the surviving
//! `(key → profile, seq)` map — compaction rewrites records in key order
//! with per-key sequence numbers — so a seeded request schedule produces
//! byte-identical stores at any server thread count (see
//! `tests/serve_soak.rs`).
//!
//! The chaos layer (this PR) keeps that contract under *injected*
//! failure: seeded disk faults behind the store's I/O seams, seeded net
//! faults keyed on client-stamped request ids, idempotent retries via
//! `expected_seq`, a background scrubber that quarantines-with-counts
//! and repairs, and degraded-mode serving with a typed flag — so the
//! same schedule under the same fault plans replays bit-for-bit too
//! (see `tests/serve_chaos.rs`).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod protocol;
pub mod server;
pub mod store;

pub use protocol::{
    frame_rid, stamp_rid, DriftStatus, ErrorCode, FrameError, Request, Response, ServerStats,
    MAX_FRAME_LEN, REPAIR_QUEUE_LIST_CAP,
};
pub use server::{
    Connection, RunningServer, ServeAddr, Server, ServerConfig, ServerReport,
    DEFAULT_QUEUE_CAP, DEFAULT_SCRUB_BATCH,
};
pub use store::{
    CompactionReport, GetOutcome, ProfileStore, ScrubReport, StoreKey, StoreReplay, StoreStats,
};
