//! Property tests for the columnar profile store.
//!
//! The store's contract is the journal's, lifted to keyed records: an
//! acked `put` is never lost, damage is always *quarantined with counts*
//! (never a panic, never silently read back), and compaction is a pure
//! function of the live `(key, seq, profile)` map. Each property drives a
//! seeded random schedule — op interleavings, crash injections from
//! `rt::fault::CrashPlan`, raw byte flips — against a shadow model and
//! checks those three guarantees at every recovery point.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use smokescreen_core::{Aggregate, Profile, ProfilePoint};
use smokescreen_degrade::InterventionSet;
use smokescreen_rt::fault::{CrashKind, CrashPlan};
use smokescreen_rt::proptest::prelude::*;
use smokescreen_serve::{ProfileStore, StoreKey};
use smokescreen_video::ObjectClass;

const IDENTITY: &str = "store-properties";

/// A fresh scratch directory per case; unique across the parallel test
/// threads of this binary.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "smk-store-prop-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small key space: collisions between ops are the interesting part.
fn key_for(sel: u64) -> StoreKey {
    StoreKey::new(1 + sel % 3, 1 + (sel / 3) % 4)
}

/// Deterministic but varied profile payloads — different variants give
/// different byte lengths and field values, so superseded records leave
/// dead regions of differing sizes.
fn profile_for(variant: u64, points: usize) -> Profile {
    let points = points.max(1);
    let class = [
        ObjectClass::Car,
        ObjectClass::Truck,
        ObjectClass::Bus,
        ObjectClass::Person,
    ][(variant % 4) as usize];
    let aggregate = match variant % 3 {
        0 => Aggregate::Avg,
        1 => Aggregate::Sum,
        _ => Aggregate::Count { at_least: 1.0 },
    };
    Profile {
        corpus: format!("prop-corpus-{}", variant % 5),
        model: format!("sim-model-{}", variant % 3),
        class,
        aggregate,
        delta: 0.01 + (variant % 7) as f64 * 0.01,
        points: (0..points)
            .map(|i| {
                let fraction = (i + 1) as f64 / points as f64;
                ProfilePoint {
                    set: InterventionSet::sampling(fraction),
                    y_approx: variant as f64 * 0.25 + fraction,
                    err_b: 0.4 / (1.0 + 8.0 * fraction) + (variant % 11) as f64 * 1e-3,
                    corrected: (variant + i as u64) % 2 == 0,
                    n: 32 * (i + 1),
                }
            })
            .collect(),
    }
}

/// Shadow of every *acked* write: key → (expected seq, expected profile).
type Shadow = BTreeMap<StoreKey, (u64, Profile)>;

/// Asserts that the live store agrees exactly with the shadow model.
fn assert_matches_shadow(store: &mut ProfileStore, shadow: &Shadow) {
    assert_eq!(store.len(), shadow.len(), "live record count");
    for (key, (seq, profile)) in shadow {
        let got = store.get(*key).expect("get never errors on a clean store");
        let (got_seq, got_profile) = got.unwrap_or_else(|| {
            panic!("acked write {key:?} seq {seq} lost");
        });
        assert_eq!(got_seq, *seq, "per-key sequence for {key:?}");
        assert_eq!(*got_profile, *profile, "payload for {key:?}");
    }
}

proptest! {
    /// Random put/get/compact/reopen interleavings never diverge from a
    /// shadow map of acked writes, and recovery after a clean close finds
    /// exactly the shadow — no quarantine, no torn tail.
    #[test]
    fn interleavings_match_shadow_model(
        ops in proptest::collection::vec((0u8..10, 0u64..12, 1u64..64), 1..28),
        points in 1usize..6,
    ) {
        let dir = scratch_dir("model");
        let (mut store, replay) = ProfileStore::open(&dir, IDENTITY).unwrap();
        prop_assert!(replay.created);
        let mut shadow = Shadow::new();

        for (op, key_sel, variant) in ops {
            let key = key_for(key_sel);
            match op {
                // Put dominates the mix: it is the only state transition.
                0..=5 => {
                    let profile = profile_for(variant, points);
                    let seq = store.put(key, &profile).unwrap();
                    let expected = shadow.get(&key).map_or(0, |(s, _)| *s) + 1;
                    prop_assert_eq!(seq, expected, "acked seq is prior seq + 1");
                    shadow.insert(key, (seq, profile));
                }
                6 | 7 => {
                    let got = store.get(key).unwrap();
                    match shadow.get(&key) {
                        Some((seq, profile)) => {
                            let (got_seq, got_profile) =
                                got.expect("acked write visible to get");
                            prop_assert_eq!(got_seq, *seq);
                            prop_assert_eq!(&*got_profile, profile);
                        }
                        None => prop_assert!(got.is_none(), "unwritten key is absent"),
                    }
                }
                8 => {
                    let report = store.compact().unwrap();
                    prop_assert_eq!(report.live_records, shadow.len());
                }
                _ => {
                    drop(store);
                    let (reopened, replay) = ProfileStore::open(&dir, IDENTITY).unwrap();
                    store = reopened;
                    prop_assert_eq!(replay.quarantined_records, 0, "clean close, clean replay");
                    prop_assert!(!replay.torn_tail);
                    prop_assert_eq!(replay.records, shadow.len());
                }
            }
        }

        assert_matches_shadow(&mut store, &shadow);
        drop(store);
        let (mut reopened, replay) = ProfileStore::open(&dir, IDENTITY).unwrap();
        prop_assert_eq!(replay.records, shadow.len());
        prop_assert_eq!(replay.quarantined_records, 0);
        assert_matches_shadow(&mut reopened, &shadow);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The final compacted bytes — data segment and index segment — are a
    /// pure function of the surviving map: where compactions happen in
    /// the schedule changes nothing. This is the invariant the soak
    /// test's byte-identical-across-thread-counts claim stands on.
    #[test]
    fn compaction_points_do_not_change_final_bytes(
        puts in proptest::collection::vec((0u64..12, 1u64..64, any::<bool>()), 1..24),
        points in 1usize..5,
    ) {
        let dir_a = scratch_dir("cpt-a");
        let dir_b = scratch_dir("cpt-b");
        let (mut a, _) = ProfileStore::open(&dir_a, IDENTITY).unwrap();
        let (mut b, _) = ProfileStore::open(&dir_b, IDENTITY).unwrap();

        for (key_sel, variant, compact_a_here) in &puts {
            let key = key_for(*key_sel);
            let profile = profile_for(*variant, points);
            let seq_a = a.put(key, &profile).unwrap();
            let seq_b = b.put(key, &profile).unwrap();
            prop_assert_eq!(seq_a, seq_b, "same schedule, same seqs");
            // Store A compacts mid-schedule wherever the coin says;
            // store B only once at the end.
            if *compact_a_here {
                a.compact().unwrap();
            }
        }
        let report_a = a.compact().unwrap();
        let report_b = b.compact().unwrap();
        prop_assert_eq!(report_a.live_records, report_b.live_records);

        let data_a = std::fs::read(a.data_path()).unwrap();
        let data_b = std::fs::read(b.data_path()).unwrap();
        prop_assert_eq!(data_a, data_b, "data segments byte-identical");
        let idx_a = std::fs::read(a.index_path()).unwrap();
        let idx_b = std::fs::read(b.index_path()).unwrap();
        prop_assert_eq!(idx_a, idx_b, "index segments byte-identical");

        // Compaction is also idempotent: a second pass reclaims nothing
        // and rewrites the same bytes.
        let again = a.compact().unwrap();
        prop_assert_eq!(again.reclaimed_bytes, 0);
        prop_assert_eq!(
            std::fs::read(a.data_path()).unwrap(),
            data_b,
            "second compaction is a fixed point"
        );
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    /// `CrashPlan`-driven kills — clean crashes after an acked append and
    /// torn mid-append crashes — never lose an acked write. Torn tails
    /// are always quarantined with counts on reopen, and the repair
    /// truncates so the *next* reopen is clean.
    #[test]
    fn crash_plan_kills_never_lose_acked_writes(
        seed in any::<u64>(),
        puts in proptest::collection::vec((0u64..12, 1u64..64), 1..20),
        points in 1usize..5,
    ) {
        let dir = scratch_dir("crash");
        let plan = CrashPlan::new(seed, 0.4);
        let (mut store, _) = ProfileStore::open(&dir, IDENTITY).unwrap();
        let mut shadow = Shadow::new();

        for (cell, (key_sel, variant)) in puts.iter().enumerate() {
            let key = key_for(*key_sel);
            let profile = profile_for(*variant, points);
            match plan.crash_at(cell as u64) {
                None => {
                    let seq = store.put(key, &profile).unwrap();
                    shadow.insert(key, (seq, profile));
                }
                Some(CrashKind::AfterAppend) => {
                    // The append was acked, THEN the process died: the
                    // write must survive the reopen.
                    let seq = store.put(key, &profile).unwrap();
                    shadow.insert(key, (seq, profile));
                    drop(store);
                    let (reopened, replay) = ProfileStore::open(&dir, IDENTITY).unwrap();
                    store = reopened;
                    prop_assert_eq!(replay.quarantined_records, 0);
                    prop_assert!(!replay.torn_tail);
                    prop_assert_eq!(replay.records, shadow.len());
                }
                Some(CrashKind::TornAppend { keep_frac }) => {
                    // Died mid-append: the write was never acked, so the
                    // shadow does not record it. Reopen must quarantine
                    // the torn tail — with counts, never a panic — and
                    // must not surface the partial record.
                    store.put_torn(key, &profile, keep_frac).unwrap();
                    drop(store);
                    let (reopened, replay) = ProfileStore::open(&dir, IDENTITY).unwrap();
                    store = reopened;
                    prop_assert!(replay.torn_tail, "partial frame reported as torn");
                    prop_assert!(replay.quarantined_records >= 1);
                    prop_assert!(replay.quarantined_bytes > 0);
                    prop_assert_eq!(replay.records, shadow.len());
                    // The repair truncated the tail: recovery converges
                    // in one step.
                    drop(store);
                    let (clean, replay) = ProfileStore::open(&dir, IDENTITY).unwrap();
                    store = clean;
                    prop_assert_eq!(replay.quarantined_records, 0);
                    prop_assert!(!replay.torn_tail);
                }
            }
        }

        assert_matches_shadow(&mut store, &shadow);
        let report = store.compact().unwrap();
        prop_assert_eq!(report.live_records, shadow.len());
        assert_matches_shadow(&mut store, &shadow);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A flipped byte anywhere in the data segment — header, record
    /// framing, or payload; scan path or index fast path — is either
    /// quarantined at open or quarantined at read, always with counts,
    /// never a panic and never a wrong payload. The store keeps accepting
    /// writes afterwards, and compaction washes the damage out.
    #[test]
    fn byte_flips_quarantine_with_counts_never_panic(
        records in 1u64..10,
        points in 1usize..5,
        offset_frac in 0.0f64..1.0,
        mask in 1u8..=255,
        compact_first in any::<bool>(),
    ) {
        let dir = scratch_dir("rot");
        let (mut store, _) = ProfileStore::open(&dir, IDENTITY).unwrap();
        let mut expected = Shadow::new();
        for i in 0..records {
            // Distinct keys: every appended record stays live.
            let key = StoreKey::new(100 + i, 1);
            let profile = profile_for(i + 1, points);
            let seq = store.put(key, &profile).unwrap();
            expected.insert(key, (seq, profile));
        }
        if compact_first {
            // With an index present, recovery takes the fast path and
            // payload damage is only discoverable at read time.
            store.compact().unwrap();
        }
        drop(store);

        let data_path = dir.join("profiles.data");
        let mut bytes = std::fs::read(&data_path).unwrap();
        let at = ((bytes.len() as f64 * offset_frac) as usize).min(bytes.len() - 1);
        bytes[at] ^= mask;
        std::fs::write(&data_path, &bytes).unwrap();

        // Never an Err, never a panic — whatever byte was hit.
        let (mut store, replay) = ProfileStore::open(&dir, IDENTITY).unwrap();
        prop_assert!(replay.records <= expected.len());

        let mut correct = 0usize;
        let mut lost = 0usize;
        for (key, (seq, profile)) in &expected {
            match store.get(*key).expect("get never errors under bit rot") {
                Some((got_seq, got_profile)) => {
                    // A surviving read is never a wrong read: the
                    // checksum gate means damage cannot masquerade as
                    // a valid payload.
                    prop_assert_eq!(got_seq, *seq);
                    prop_assert_eq!(&*got_profile, profile);
                    correct += 1;
                }
                None => lost += 1,
            }
        }
        prop_assert_eq!(correct + lost, expected.len());
        // The flip always damages something, and every loss is counted:
        // either recovery quarantined it at open or the read path did.
        let surfaced =
            replay.quarantined_records as u64 + store.stats().quarantined_records;
        prop_assert!(lost >= 1, "a flipped byte never goes unnoticed");
        prop_assert!(surfaced >= 1, "loss is always quarantined with counts");

        // Still writable after damage …
        let fresh_key = StoreKey::new(9_999, 9_999);
        let fresh = profile_for(77, points);
        prop_assert_eq!(store.put(fresh_key, &fresh).unwrap(), 1);
        // … and compaction drops the damage for good: the next recovery
        // is clean and serves every survivor.
        store.compact().unwrap();
        drop(store);
        let (mut clean, replay) = ProfileStore::open(&dir, IDENTITY).unwrap();
        prop_assert_eq!(replay.quarantined_records, 0);
        prop_assert!(replay.index_used);
        prop_assert_eq!(replay.records, correct + 1);
        for (key, (seq, profile)) in &expected {
            if let Some((got_seq, got_profile)) = clean.get(*key).unwrap() {
                prop_assert_eq!(got_seq, *seq);
                prop_assert_eq!(&*got_profile, profile);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The columnar codec round-trips every generated profile exactly.
    #[test]
    fn codec_round_trips_generated_profiles(
        variant in any::<u64>(),
        points in 1usize..24,
    ) {
        let profile = profile_for(variant, points);
        let bytes = smokescreen_serve::store::encode_profile(&profile);
        let back = smokescreen_serve::store::decode_profile(&bytes).unwrap();
        prop_assert_eq!(profile, back);
    }
}
