//! Harry's scenario (paper Examples 1–3): a city computes the average
//! number of cars per frame on a surveillance road, needs the answer
//! within 10% of truth, and wants to minimize bandwidth/energy and
//! privacy exposure from the cameras.
//!
//! ```sh
//! cargo run --release --example traffic_monitoring
//! ```

use smokescreen::camera::{Camera, Fleet, Link};
use smokescreen::core::{Aggregate, CorrectionConfig, Preferences, Smokescreen};
use smokescreen::degrade::{CandidateGrid, InterventionSet};
use smokescreen::models::SimMaskRcnn;
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::ObjectClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = DatasetPreset::NightStreet.generate(7);
    let mask_rcnn = SimMaskRcnn::new(3);

    println!("== Harry's weekend car-counting query ==");
    println!(
        "night-street corpus: {} frames, mean cars/frame (ground truth) = {:.3}",
        corpus.len(),
        corpus.stats().mean_cars_per_frame
    );

    // Profile the query so Harry can see the tradeoff curve instead of
    // guessing a resolution (Example 1's failure mode).
    let system = Smokescreen::new(&corpus, &mask_rcnn, ObjectClass::Car, Aggregate::Avg, 0.05);
    let grid = CandidateGrid::explicit(
        vec![0.02, 0.05, 0.1, 0.2, 0.5, 0.8],
        smokescreen::degrade::grid::uniform_resolutions(&mask_rcnn, 128, 640, 5),
        vec![vec![]],
    );
    let correction = system.build_correction_set(&CorrectionConfig::default(), 11)?;
    let (profile, _) = system.generate_profile(&grid, Some(&correction))?;

    // Example 2: Harry reads the curve and finds the most degraded
    // setting that keeps the bound within the city's error budget. The
    // maintenance department asks for 10%, but night-street counts are
    // sparse (≈0.4 cars/frame), so if no guaranteed setting reaches 10%
    // Harry relaxes to 20% and records the compromise — exactly the
    // negotiation the profile exists to support.
    let chosen = match system.choose(&profile, &Preferences::accuracy(0.10)) {
        Ok(set) => {
            println!("\n10% error budget is attainable");
            set
        }
        Err(_) => {
            println!("\nno guaranteed setting meets 10% on this sparse video; relaxing to 20%");
            system.choose(&profile, &Preferences::accuracy(0.20))?
        }
    };
    println!("profile has {} candidates; chosen: {}", profile.len(), chosen.describe());

    let estimate = system.estimate(&chosen, 5)?;
    let truth = system.workload().true_answer();
    println!(
        "estimated AVG(cars) = {:.3} ± {:.1}% (bound), truth {:.3}, actual error {:.1}%",
        estimate.y_approx(),
        estimate.err_b() * 100.0,
        truth,
        ((estimate.y_approx() - truth) / truth).abs() * 100.0
    );

    // What the degradation buys at the camera: compare full-fidelity
    // transmission against the chosen intervention across a small fleet.
    let fleet = Fleet {
        cameras: vec![
            Camera::new("main-street", corpus.slice(0, 6_000), Link::SENSOR_NET),
            Camera::new("bridge", corpus.slice(6_000, 12_000), Link::SENSOR_NET),
            Camera::new("parking", corpus.slice(12_000, corpus.len()), Link::SENSOR_NET),
        ],
    };
    let before = fleet.transmit_all(&InterventionSet::none(), 1)?;
    let after = fleet.transmit_all(&chosen, 1)?;

    println!("\n== fleet impact of the chosen degradation ==");
    println!(
        "bytes:    {:>12} → {:>12}  ({:.1}% of original)",
        before.total_bytes(),
        after.total_bytes(),
        after.total_bytes() as f64 / before.total_bytes() as f64 * 100.0
    );
    println!(
        "energy:   {:>10.1} J → {:>10.1} J",
        before.total_energy_j(),
        after.total_energy_j()
    );
    println!(
        "privacy:  exposure {:>8.1} → {:>8.1}",
        before.total_exposure(),
        after.total_exposure()
    );
    for report in &after.cameras {
        println!(
            "  {:>12}: {} frames, {:.2} MB, uplink busy {:.0}s",
            report.camera,
            report.frames_shipped,
            report.bytes as f64 / 1e6,
            report.transmit_seconds
        );
    }

    Ok(())
}
