//! The §7 caveat, demonstrated: frame sampling is a *random* intervention
//! for frame-level detectors but a *non-random* one for sequence models
//! (action recognition, motion analysis), whose outputs depend on the
//! inter-frame gap. Naive bounds fail there; profile repair with a
//! neighbour-retaining correction set still works.
//!
//! ```sh
//! cargo run --release --example sequence_models
//! ```

use smokescreen::core::correction::CorrectionSet;
use smokescreen::core::{corrected_bound, estimate_from_outputs, Aggregate};
use smokescreen::models::temporal::{MotionEnergyModel, SequenceModel};
use smokescreen::stats::sample::sample_indices;
use smokescreen::video::synth::DatasetPreset;

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

fn main() {
    let corpus = DatasetPreset::Detrac.generate(3).slice(0, 8_000);
    let model = MotionEnergyModel;

    // Ground truth: motion energy on the undegraded (stride-1) video.
    let truth = mean(&model.outputs_at_stride(&corpus, 1));
    println!("true mean motion energy (stride 1): {truth:.4}\n");

    println!("{:>10}  {:>12}  {:>10}  {:>12}", "fraction", "mean output", "true err", "naive bound");
    for fraction in [0.5, 0.2, 0.1, 0.05] {
        // Sampling stretches the gap between consecutive retained frames.
        let n = (corpus.len() as f64 * fraction) as usize;
        let mut idx = sample_indices(corpus.len(), n, 7).unwrap();
        idx.sort_unstable();
        let outputs: Vec<f64> = idx
            .windows(2)
            .map(|w| model.output(&corpus, w[1], w[1] - w[0]))
            .collect();

        let est = estimate_from_outputs(Aggregate::Avg, &outputs, corpus.len(), 0.05).unwrap();
        let err = (est.y_approx() - truth).abs() / truth;
        let lie = if est.err_b() < err { "  ← bound LIES" } else { "" };
        println!(
            "{:>10.2}  {:>12.4}  {:>10.3}  {:>12.3}{lie}",
            fraction,
            mean(&outputs),
            err,
            est.err_b()
        );
    }

    // The fix: a brief undegraded window (5% of frames with stride-1
    // neighbours) anchors a repaired bound.
    let m = corpus.len() / 20;
    let values: Vec<f64> = sample_indices(corpus.len(), m, 11)
        .unwrap()
        .into_iter()
        .map(|i| model.output(&corpus, i, 1))
        .collect();
    let correction = CorrectionSet {
        estimate: estimate_from_outputs(Aggregate::Avg, &values, corpus.len(), 0.05).unwrap(),
        fraction: m as f64 / corpus.len() as f64,
        values,
        growth_curve: Vec::new(),
    };

    let n = corpus.len() / 10;
    let mut idx = sample_indices(corpus.len(), n, 7).unwrap();
    idx.sort_unstable();
    let outputs: Vec<f64> = idx
        .windows(2)
        .map(|w| model.output(&corpus, w[1], w[1] - w[0]))
        .collect();
    let degraded = estimate_from_outputs(Aggregate::Avg, &outputs, corpus.len(), 0.05).unwrap();
    let repaired = corrected_bound(&degraded, &correction).unwrap();
    let err = (degraded.y_approx() - truth).abs() / truth;
    println!(
        "\nwith a 5% stride-1 correction set at f=0.10: repaired bound {repaired:.3} ≥ true error {err:.3}"
    );
}
