//! Pixel-level validation of the analytic detector model: render frames
//! to real grayscale buffers, downsample them, and recover objects with a
//! connected-component blob detector. Recall collapses at low resolution
//! for *physical* reasons (objects dissolve into background noise) — the
//! same shape the analytic simulators produce, which is what justifies
//! using them for the large experiments.
//!
//! ```sh
//! cargo run --release --example pixel_pipeline
//! ```

use smokescreen::models::blob::BlobDetector;
use smokescreen::models::{Detector, SimYoloV4};
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::{ObjectClass, Resolution};

fn main() {
    // A small slice: the blob detector touches every pixel, so this is
    // the expensive path.
    let corpus = DatasetPreset::Detrac.generate(5).slice(0, 120);
    let truth: f64 = corpus
        .frames()
        .iter()
        .map(|f| f.count_class(ObjectClass::Car) as f64)
        .sum();

    let blob = BlobDetector::default();
    let yolo = SimYoloV4::new(2);

    println!("ground truth: {truth} cars across {} frames\n", corpus.len());
    println!(
        "{:>10}  {:>14}  {:>14}  {:>12}",
        "resolution", "blob(pixels)", "sim-yolo", "blob recall"
    );
    for side in [608u32, 416, 320, 224, 160, 96, 48] {
        let res = Resolution::square(side);
        let blob_count: f64 = corpus
            .frames()
            .iter()
            .map(|f| blob.count(f, res, ObjectClass::Car))
            .sum();
        let yolo_count: f64 = if yolo.supports(res) {
            corpus
                .frames()
                .iter()
                .map(|f| yolo.count(f, res, ObjectClass::Car))
                .sum()
        } else {
            f64::NAN
        };
        println!(
            "{:>10}  {:>14.0}  {:>14.0}  {:>11.1}%",
            res.to_string(),
            blob_count,
            yolo_count,
            blob_count / truth * 100.0
        );
    }

    println!(
        "\nBoth columns fall with resolution: the analytic simulator's \
         logistic response matches the pixel path's behaviour."
    );
}
