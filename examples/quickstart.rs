//! Quickstart: generate a corpus, profile a query, choose a tradeoff, and
//! run the query under the chosen degradation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use smokescreen::core::{Aggregate, CorrectionConfig, Preferences, Smokescreen};
use smokescreen::degrade::CandidateGrid;
use smokescreen::models::SimYoloV4;
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::ObjectClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The "original video": a calibrated UA-DETRAC-like synthetic
    //    corpus (15,210 frames of dense traffic). In a real deployment
    //    this is whatever the cameras capture.
    let corpus = DatasetPreset::Detrac.generate(42);
    println!("corpus: {} frames — {:?}", corpus.len(), corpus.stats());

    // 2. The query: AVG number of cars per frame, detected by the YOLOv4
    //    simulator, with 95% confidence bounds.
    let yolo = SimYoloV4::new(7);
    let system = Smokescreen::new(&corpus, &yolo, ObjectClass::Car, Aggregate::Avg, 0.05);

    // 3. Intervention candidates: the default grid (1% fraction steps ×
    //    ten resolutions × person/face removal combinations) would be
    //    profiled in production; a smaller explicit grid keeps this
    //    example fast.
    let grid = CandidateGrid::explicit(
        vec![0.01, 0.02, 0.05, 0.10, 0.25, 0.50],
        smokescreen::degrade::grid::uniform_resolutions(&yolo, 128, 608, 5),
        vec![vec![], vec![ObjectClass::Person]],
    );

    // 4. Correction set (§3.3.1): sized automatically at the elbow of its
    //    own error bound.
    let correction = system.build_correction_set(&CorrectionConfig::default(), 1)?;
    println!(
        "correction set: {} frames ({:.1}% of corpus), err_b(v) = {:.4}",
        correction.len(),
        correction.fraction * 100.0,
        correction.estimate.err_b()
    );

    // 5. Profile generation.
    let (profile, report) = system.generate_profile(&grid, Some(&correction))?;
    println!(
        "profiled {} candidates ({} model runs, {:.1}s simulated model time, {:.1}ms estimation)",
        profile.len(),
        report.model_runs,
        report.model_time_ms / 1e3,
        report.estimation_time_ms
    );

    // 6. The administrator's tradeoff: at most 20% analytical error,
    //    maximize degradation (minimize transmitted bytes). Every grid
    //    candidate here carries a resolution intervention, so its bound is
    //    repaired against the correction set and can never drop below the
    //    correction set's own err_b (≈0.17 above) — the threshold must sit
    //    above that floor to be feasible.
    let prefs = Preferences::accuracy(0.20);
    let chosen = system.choose(&profile, &prefs)?;
    println!("chosen intervention: {}", chosen.describe());

    // 7. Run the query under the chosen degradation.
    let estimate = system.estimate(&chosen, 99)?;
    println!(
        "AVG(cars) ≈ {:.3} with err_b = {:.3} (truth would be {:.3})",
        estimate.y_approx(),
        estimate.err_b(),
        system.workload().true_answer()
    );

    Ok(())
}
