//! Legal-compliance scenario: CCTV footage shared with a third party must
//! have faces removed (GDPR-style), and the operator additionally wants
//! person frames gone. Image removal is a *non-random* intervention, so a
//! naive error bound is systematically wrong — this example shows the
//! failure and the profile-repair fix, then walks the administration
//! procedure.
//!
//! ```sh
//! cargo run --release --example privacy_compliance
//! ```

use smokescreen::core::{
    corrected_bound, true_relative_error, Aggregate, CorrectionConfig, Preferences, Smokescreen,
};
use smokescreen::degrade::{CandidateGrid, InterventionSet};
use smokescreen::models::SimYoloV4;
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::{ObjectClass, Resolution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = DatasetPreset::Detrac.generate(21);
    let yolo = SimYoloV4::new(9);
    let system = Smokescreen::new(&corpus, &yolo, ObjectClass::Car, Aggregate::Avg, 0.05);
    let truth_outputs = system.workload().population_outputs();

    // The compliance intervention: drop every person frame, and ship at
    // low resolution. Persons correlate with traffic, so the surviving
    // frames systematically under-count cars.
    let compliance =
        InterventionSet::sampling(0.1).with_restricted(&[ObjectClass::Person, ObjectClass::Face]);

    let naive = system.estimate(&compliance, 3)?;
    let true_err = true_relative_error(Aggregate::Avg, &naive, &truth_outputs);
    println!("== naive bound under image removal ==");
    println!(
        "claimed err_b = {:.3}, actual error = {:.3}  {}",
        naive.err_b(),
        true_err,
        if naive.err_b() < true_err {
            "← the bound LIES (non-random intervention)"
        } else {
            ""
        }
    );

    // Profile repair: a correction set of randomly sampled, undegraded
    // frames anchors the bound (§3.2.5).
    let correction = system.build_correction_set(&CorrectionConfig::default(), 13)?;
    let repaired = corrected_bound(&naive, &correction)?;
    println!("\n== repaired bound ==");
    println!(
        "correction set: {} frames ({:.1}%); repaired err_b = {:.3} ≥ actual {:.3}",
        correction.len(),
        correction.fraction * 100.0,
        repaired,
        true_err
    );

    // The full administration procedure over a compliant candidate grid:
    // every candidate removes at least `face`.
    let grid = CandidateGrid::explicit(
        vec![0.05, 0.1, 0.2],
        vec![Resolution::square(192), Resolution::square(320), Resolution::square(608)],
        vec![
            vec![ObjectClass::Face],
            vec![ObjectClass::Person, ObjectClass::Face],
        ],
    );
    let (profile, _) = system.generate_profile(&grid, Some(&correction))?;
    let mut session = system.admin_session(profile);

    println!("\n== administrator's initial view (loosest slices) ==");
    let view = session.initial_view();
    println!("bound vs fraction (at loosest resolution / removal):");
    for (f, err) in &view.over_fraction {
        println!("  f={f:.2} → err_b={err:.3}");
    }
    println!("bound vs resolution (at loosest fraction / removal):");
    for (side, err) in &view.over_resolution {
        println!("  {side}px → err_b={err:.3}");
    }

    let mut prefs = Preferences::accuracy(0.35);
    prefs.required_removals = vec![ObjectClass::Face];
    let recommended = session.recommend(&prefs)?;
    println!("\nrecommended compliant intervention: {}", recommended.describe());
    let bound = session.validate_choice(&recommended, &prefs)?;
    println!("validated: profiled bound {bound:.3} meets the {:.2} requirement", prefs.max_error);

    Ok(())
}
