//! The declarative query surface: registered corpora, SQL-ish queries
//! with degradation clauses, answers with error bounds attached.
//!
//! ```sh
//! cargo run --release --example query_language
//! ```

use smokescreen::query::QueryEngine;
use smokescreen::video::synth::DatasetPreset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = QueryEngine::new(1, 7);
    engine.register("nightstreet", DatasetPreset::NightStreet.generate(42));
    engine.register("detrac", DatasetPreset::Detrac.generate(42));

    let queries = [
        // Plain sampled aggregates.
        "SELECT AVG(car) FROM detrac SAMPLE 0.05",
        "SELECT SUM(car) FROM detrac SAMPLE 0.05",
        // How many frames show real congestion (≥ 8 cars)?
        "SELECT COUNT(car >= 8) FROM detrac SAMPLE 0.1",
        // The most crowded moment, as a 0.99-quantile.
        "SELECT MAX(car) FROM detrac SAMPLE 0.1 QUANTILE 0.99",
        // Output-variance needs a generous fraction: VAR is a small
        // difference of large quantities, so its bound is intrinsically wide.
        "SELECT VAR(car) FROM detrac SAMPLE 0.6",
        // Night-street with the two-stage model and degradation clauses:
        // the engine warns that the bound now needs a correction set.
        "SELECT AVG(car) FROM nightstreet SAMPLE 0.5 RESOLUTION 256x256 USING sim-mask-rcnn",
        "SELECT AVG(car) FROM nightstreet SAMPLE 0.2 REMOVE person, face CONFIDENCE 0.99",
        // Ground-truth sanity check.
        "SELECT AVG(car) FROM nightstreet USING oracle",
    ];

    for sql in queries {
        println!("> {sql}");
        match engine.run(sql) {
            Ok(output) => println!("  {output}\n"),
            Err(e) => println!("  error: {e}\n"),
        }
    }

    // Parse errors are reported cleanly, not panicked on. (MEDIAN would
    // not do here: the engine accepts it as QUANTILE 0.5.)
    let bad = "SELECT MODE(car) FROM detrac";
    println!("> {bad}");
    println!("  error: {}\n", engine.run(bad).unwrap_err());

    Ok(())
}
