//! Smokescreen — controlled intentional degradation for analytical video
//! systems.
//!
//! Facade crate re-exporting the full workspace. See the README for a
//! quickstart and `DESIGN.md` for the system inventory.

pub use smokescreen_camera as camera;
pub use smokescreen_core as core;
pub use smokescreen_degrade as degrade;
pub use smokescreen_models as models;
pub use smokescreen_query as query;
pub use smokescreen_rt as rt;
pub use smokescreen_stats as stats;
pub use smokescreen_video as video;
