//! `smokescreen-cli` — interactive shell for the video degradation-
//! accuracy profiling system.
//!
//! ```text
//! $ cargo run --release --bin smokescreen-cli
//! smokescreen> load detrac traffic 42
//! smokescreen> stats traffic
//! smokescreen> SELECT AVG(car) FROM traffic SAMPLE 0.1
//! smokescreen> profile traffic avg 0.15
//! smokescreen> quit
//! ```
//!
//! A single query can also be passed as arguments for one-shot use:
//! `smokescreen-cli "SELECT AVG(car) FROM detrac SAMPLE 0.1"` (the two
//! paper presets are pre-registered under `detrac` and `nightstreet`).

use std::io::{BufRead, Write};

use smokescreen::core::{Aggregate, CorrectionConfig, Preferences, Smokescreen};
use smokescreen::degrade::CandidateGrid;
use smokescreen::models::SimYoloV4;
use smokescreen::query::QueryEngine;
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::{ObjectClass, VideoCorpus};

struct Shell {
    engine: QueryEngine,
    corpora: Vec<(String, VideoCorpus)>,
}

impl Shell {
    fn new() -> Self {
        let mut shell = Shell {
            engine: QueryEngine::new(1, 7),
            corpora: Vec::new(),
        };
        shell.load("detrac", DatasetPreset::Detrac, 42);
        shell.load("nightstreet", DatasetPreset::NightStreet, 42);
        shell
    }

    fn load(&mut self, name: &str, preset: DatasetPreset, seed: u64) {
        let corpus = preset.generate(seed);
        self.engine.register(name, corpus.clone());
        self.corpora.retain(|(n, _)| n != name);
        self.corpora.push((name.to_string(), corpus));
    }

    fn corpus(&self, name: &str) -> Option<&VideoCorpus> {
        self.corpora.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// Executes one line; returns false to exit.
    fn dispatch(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return true;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        match words[0].to_ascii_lowercase().as_str() {
            "quit" | "exit" => return false,
            "help" => self.help(),
            "corpora" => {
                for (name, corpus) in &self.corpora {
                    println!("  {name}: {} frames @ {}", corpus.len(), corpus.native_resolution);
                }
            }
            "load" => match (words.get(1), words.get(2)) {
                (Some(&preset), name) => {
                    let preset_enum = match preset {
                        "detrac" => Some(DatasetPreset::Detrac),
                        "nightstreet" | "night-street" => Some(DatasetPreset::NightStreet),
                        _ => None,
                    };
                    let seed = words.get(3).and_then(|s| s.parse().ok()).unwrap_or(42);
                    match preset_enum {
                        Some(p) => {
                            let name = name.copied().unwrap_or(preset).to_string();
                            self.load(&name, p, seed);
                            println!("loaded {name} (seed {seed})");
                        }
                        None => println!("unknown preset {preset:?}; try detrac|nightstreet"),
                    }
                }
                _ => println!("usage: load <detrac|nightstreet> [name] [seed]"),
            },
            "stats" => match words.get(1).and_then(|n| self.corpus(n)) {
                Some(corpus) => println!("  {:?}", corpus.stats()),
                None => println!("usage: stats <corpus> (see `corpora`)"),
            },
            "profile" => self.profile(&words),
            "select" => match self.engine.run(line) {
                Ok(out) => println!("  {out}"),
                Err(e) => println!("  error: {e}"),
            },
            other => println!("unknown command {other:?}; try `help`"),
        }
        true
    }

    fn profile(&self, words: &[&str]) {
        let Some(corpus) = words.get(1).and_then(|n| self.corpus(n)) else {
            println!("usage: profile <corpus> <avg|sum|count|max> [max_error]");
            return;
        };
        let aggregate = match words.get(2).map(|s| s.to_ascii_lowercase()).as_deref() {
            Some("avg") | None => Aggregate::Avg,
            Some("sum") => Aggregate::Sum,
            Some("count") => Aggregate::Count { at_least: 1.0 },
            Some("max") => Aggregate::Max { r: 0.99 },
            Some(other) => {
                println!("unknown aggregate {other:?}");
                return;
            }
        };
        let max_error: f64 = words.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.15);

        let yolo = SimYoloV4::new(1);
        let system = Smokescreen::new(corpus, &yolo, ObjectClass::Car, aggregate, 0.05);
        let grid = CandidateGrid::explicit(
            vec![0.02, 0.05, 0.1, 0.25, 0.5, 0.8],
            smokescreen::degrade::grid::uniform_resolutions(&yolo, 128, 608, 4),
            vec![vec![], vec![ObjectClass::Person]],
        );
        println!("building correction set + profile ({} candidates)…", grid.len());
        let correction = match system.build_correction_set(&CorrectionConfig::default(), 1) {
            Ok(cs) => cs,
            Err(e) => {
                println!("correction set failed: {e}");
                return;
            }
        };
        match system.generate_profile(&grid, Some(&correction)) {
            Ok((profile, report)) => {
                println!(
                    "profiled {} points; {} model runs, {:.1}ms estimation",
                    profile.len(),
                    report.model_runs,
                    report.estimation_time_ms
                );
                for (f, err) in profile.curve_over_fraction(None, &[]) {
                    println!("  f={f:.2} p=native → err_b={err:.3}");
                }
                match system.choose(&profile, &Preferences::accuracy(max_error)) {
                    Ok(set) => {
                        println!("recommended (err_b ≤ {max_error}): {}", set.describe())
                    }
                    Err(_) => println!("no candidate meets max_error={max_error}"),
                }
            }
            Err(e) => println!("profile generation failed: {e}"),
        }
    }

    fn help(&self) {
        println!(
            "commands:\n  \
             SELECT …                  run a query (see README for grammar)\n  \
             corpora                   list registered corpora\n  \
             load <preset> [name] [s]  register a preset corpus\n  \
             stats <corpus>            corpus calibration statistics\n  \
             profile <corpus> <agg> [max_error]\n                            \
             generate a profile and recommend a tradeoff\n  \
             help | quit"
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shell = Shell::new();

    if !args.is_empty() {
        // One-shot mode.
        let line = args.join(" ");
        shell.dispatch(&line);
        return;
    }

    println!("Smokescreen — controlled intentional degradation (type `help`)");
    let stdin = std::io::stdin();
    loop {
        print!("smokescreen> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {
                if !shell.dispatch(&line) {
                    break;
                }
            }
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
    }
}
