//! Statistical validity of the full pipeline: across repeated trials of
//! the complete stack (synthesis → detection → intervention → estimation),
//! the `1 − δ` bounds must cover the realized errors at least `1 − δ` of
//! the time — for every aggregate, and after repair for every non-random
//! intervention.

use smokescreen::core::{
    corrected_bound, result_error_est, true_relative_error, Aggregate, CorrectionConfig, Workload,
};
use smokescreen::core::correction::build_correction_set;
use smokescreen::degrade::{InterventionSet, RestrictionIndex};
use smokescreen::models::SimYoloV4;
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::{ObjectClass, Resolution};

const TRIALS: usize = 60;
const DELTA: f64 = 0.05;

fn coverage(aggregate: Aggregate, set: &InterventionSet, repair: bool) -> f64 {
    let corpus = DatasetPreset::Detrac.generate(3).slice(0, 5_000);
    let yolo = SimYoloV4::new(3);
    let workload = Workload {
        corpus: &corpus,
        detector: &yolo,
        class: ObjectClass::Car,
        aggregate,
        delta: DELTA,
    };
    let restrictions =
        RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person, ObjectClass::Face]);
    let population = workload.population_outputs();

    let mut covered = 0usize;
    for t in 0..TRIALS {
        let est = result_error_est(&workload, &restrictions, set, t as u64, None).unwrap();
        let bound = if repair {
            let cs = build_correction_set(
                &workload,
                &restrictions,
                &CorrectionConfig::default(),
                5_000 + t as u64,
                None,
            )
            .unwrap();
            corrected_bound(&est, &cs).unwrap()
        } else {
            est.err_b()
        };
        if true_relative_error(aggregate, &est, &population) <= bound {
            covered += 1;
        }
    }
    covered as f64 / TRIALS as f64
}

#[test]
fn random_sampling_bounds_cover_for_every_aggregate() {
    let set = InterventionSet::sampling(0.03);
    for aggregate in [
        Aggregate::Avg,
        Aggregate::Sum,
        Aggregate::Count { at_least: 1.0 },
        Aggregate::Max { r: 0.99 },
        Aggregate::Min { r: 0.05 },
        Aggregate::Var,
    ] {
        let c = coverage(aggregate, &set, false);
        assert!(
            c >= 1.0 - DELTA - 0.05,
            "{} coverage {c} below nominal",
            aggregate.name()
        );
    }
}

#[test]
fn repaired_bounds_cover_under_resolution_reduction() {
    let set = InterventionSet::sampling(0.4).with_resolution(Resolution::square(160));
    for aggregate in [Aggregate::Avg, Aggregate::Max { r: 0.99 }] {
        let c = coverage(aggregate, &set, true);
        assert!(
            c >= 1.0 - DELTA - 0.05,
            "{} repaired coverage {c} below nominal",
            aggregate.name()
        );
    }
}

#[test]
fn repaired_bounds_cover_under_image_removal() {
    let set = InterventionSet::sampling(0.1).with_restricted(&[ObjectClass::Person]);
    for aggregate in [Aggregate::Avg, Aggregate::Max { r: 0.99 }] {
        let c = coverage(aggregate, &set, true);
        assert!(
            c >= 1.0 - DELTA - 0.05,
            "{} repaired coverage {c} below nominal",
            aggregate.name()
        );
    }
}

#[test]
fn unrepaired_bounds_fail_under_strong_bias() {
    // The negative control: without repair, heavy resolution degradation
    // at a generous sampling fraction produces confidently wrong bounds.
    let set = InterventionSet::sampling(0.4).with_resolution(Resolution::square(128));
    let c = coverage(Aggregate::Avg, &set, false);
    assert!(
        c < 0.5,
        "expected the naive bound to be misleading under bias, coverage={c}"
    );
}
