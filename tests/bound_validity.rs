//! Statistical validity of the full pipeline: across repeated trials of
//! the complete stack (synthesis → detection → intervention → estimation),
//! the `1 − δ` bounds must cover the realized errors at least `1 − δ` of
//! the time — for every aggregate, and after repair for every non-random
//! intervention.

use smokescreen::core::{
    corrected_bound, result_error_est, true_relative_error, Aggregate, CorrectionConfig, Workload,
};
use smokescreen::core::correction::build_correction_set;
use smokescreen::degrade::{InterventionSet, RestrictionIndex};
use smokescreen::models::{Detector, SimYoloV4};
use smokescreen::stats::bounds::hoeffding_serfling;
use smokescreen::stats::estimators::quantile::true_rank_error;
use smokescreen::stats::sample::sample_indices;
use smokescreen::stats::{quantile_estimate, Extreme};
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::{ObjectClass, Resolution};

const TRIALS: usize = 60;
const DELTA: f64 = 0.05;

fn coverage(aggregate: Aggregate, set: &InterventionSet, repair: bool) -> f64 {
    let corpus = DatasetPreset::Detrac.generate(3).slice(0, 5_000);
    let yolo = SimYoloV4::new(3);
    let workload = Workload {
        corpus: &corpus,
        detector: &yolo,
        class: ObjectClass::Car,
        aggregate,
        delta: DELTA,
    };
    let restrictions =
        RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person, ObjectClass::Face]);
    let population = workload.population_outputs();

    let mut covered = 0usize;
    for t in 0..TRIALS {
        let est = result_error_est(&workload, &restrictions, set, t as u64, None).unwrap();
        let bound = if repair {
            let cs = build_correction_set(
                &workload,
                &restrictions,
                &CorrectionConfig::default(),
                5_000 + t as u64,
                None,
            )
            .unwrap();
            corrected_bound(&est, &cs).unwrap()
        } else {
            est.err_b()
        };
        if true_relative_error(aggregate, &est, &population) <= bound {
            covered += 1;
        }
    }
    covered as f64 / TRIALS as f64
}

#[test]
fn random_sampling_bounds_cover_for_every_aggregate() {
    let set = InterventionSet::sampling(0.03);
    for aggregate in [
        Aggregate::Avg,
        Aggregate::Sum,
        Aggregate::Count { at_least: 1.0 },
        Aggregate::Max { r: 0.99 },
        Aggregate::Min { r: 0.05 },
        Aggregate::Var,
    ] {
        let c = coverage(aggregate, &set, false);
        assert!(
            c >= 1.0 - DELTA - 0.05,
            "{} coverage {c} below nominal",
            aggregate.name()
        );
    }
}

#[test]
fn repaired_bounds_cover_under_resolution_reduction() {
    let set = InterventionSet::sampling(0.4).with_resolution(Resolution::square(160));
    for aggregate in [Aggregate::Avg, Aggregate::Max { r: 0.99 }] {
        let c = coverage(aggregate, &set, true);
        assert!(
            c >= 1.0 - DELTA - 0.05,
            "{} repaired coverage {c} below nominal",
            aggregate.name()
        );
    }
}

#[test]
fn repaired_bounds_cover_under_image_removal() {
    let set = InterventionSet::sampling(0.1).with_restricted(&[ObjectClass::Person]);
    for aggregate in [Aggregate::Avg, Aggregate::Max { r: 0.99 }] {
        let c = coverage(aggregate, &set, true);
        assert!(
            c >= 1.0 - DELTA - 0.05,
            "{} repaired coverage {c} below nominal",
            aggregate.name()
        );
    }
}

/// Per-frame car counts for one seeded night-street scene.
fn night_street_outputs(seed: u64) -> Vec<f64> {
    let corpus = DatasetPreset::NightStreet.generate(seed).slice(0, 1_500);
    let yolo = SimYoloV4::new(seed);
    let res = Resolution::square(416);
    corpus
        .frames()
        .iter()
        .map(|f| yolo.count(f, res, ObjectClass::Car))
        .collect()
}

// The two tests below run the raw stats-layer bounds at a stringent
// confidence (δ = 1e-6) so that over 50 independent scenes the chance of
// even one legitimate exceedance is ≈ 5·10⁻⁵: any observed violation
// indicates a broken inequality, not bad luck.
const SCENES: u64 = 50;
const STRICT_DELTA: f64 = 1e-6;

#[test]
fn hoeffding_serfling_never_violated_across_night_street_scenes() {
    for seed in 0..SCENES {
        let population = night_street_outputs(seed);
        let truth = population.iter().sum::<f64>() / population.len() as f64;
        for &n in &[40usize, 150, 600] {
            let idx = sample_indices(population.len(), n, seed ^ 0x5eed).unwrap();
            let sample: Vec<f64> = idx.iter().map(|&i| population[i]).collect();
            let iv = hoeffding_serfling::interval(&sample, population.len(), STRICT_DELTA).unwrap();
            assert!(
                (iv.estimate - truth).abs() <= iv.half_width,
                "scene {seed} n={n}: |{} - {truth}| > {}",
                iv.estimate,
                iv.half_width
            );
        }
    }
}

#[test]
fn hypergeometric_rank_bound_never_violated_across_night_street_scenes() {
    for seed in 0..SCENES {
        let population = night_street_outputs(seed);
        for &(r, extreme) in &[(0.99, Extreme::Max), (0.05, Extreme::Min)] {
            let idx = sample_indices(population.len(), 400, seed ^ 0xda7a).unwrap();
            let sample: Vec<f64> = idx.iter().map(|&i| population[i]).collect();
            let q =
                quantile_estimate(&sample, population.len(), r, STRICT_DELTA, extreme).unwrap();
            let realized = true_rank_error(&population, q.y_approx, r);
            assert!(
                realized <= q.err_b + 1e-12,
                "scene {seed} r={r}: rank error {realized} exceeds bound {}",
                q.err_b
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Chaos: bound validity under injected model faults.
//
// Fault decisions are pure functions of (frame id, resolution) — never of
// frame content — so dropping permanently-failed frames leaves the
// survivors a uniform without-replacement sample and the bounds, computed
// over the smaller surviving n, must stay valid. These tests check that
// at the ISSUE's 5% and 20% fault rates: nominal coverage at δ = 0.05,
// and zero violations at the stringent δ = 1e-6 (where any exceedance
// indicates broken math, not bad luck).

fn faulted_coverage(aggregate: Aggregate, fault_rate: f64, delta: f64) -> (f64, usize) {
    use smokescreen::models::{OutputCache, RetryPolicy};
    use smokescreen_rt::fault::FaultPlan;

    let corpus = DatasetPreset::Detrac.generate(3).slice(0, 5_000);
    let yolo = SimYoloV4::new(3);
    let workload = Workload {
        corpus: &corpus,
        detector: &yolo,
        class: ObjectClass::Car,
        aggregate,
        delta,
    };
    let restrictions =
        RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person, ObjectClass::Face]);
    let population = workload.population_outputs();
    let set = InterventionSet::sampling(0.03);

    let mut covered = 0usize;
    let mut total_lost = 0usize;
    for t in 0..TRIALS {
        let plan = FaultPlan::new(0xc4a0 ^ t as u64, fault_rate);
        let cache = OutputCache::with_faults(&yolo, plan, RetryPolicy::default());
        let est =
            result_error_est(&workload, &restrictions, &set, t as u64, Some(&cache)).unwrap();
        let requested = (0.03f64 * corpus.len() as f64).round() as usize;
        assert!(est.n() <= requested);
        total_lost += requested - est.n();
        if true_relative_error(aggregate, &est, &population) <= est.err_b() {
            covered += 1;
        }
    }
    (covered as f64 / TRIALS as f64, total_lost)
}

#[test]
fn bounds_cover_under_injected_faults() {
    for rate in [0.05, 0.20] {
        for aggregate in [Aggregate::Avg, Aggregate::Max { r: 0.99 }] {
            let (c, lost) = faulted_coverage(aggregate, rate, DELTA);
            assert!(lost > 0, "rate {rate} must actually lose frames");
            assert!(
                c >= 1.0 - DELTA - 0.05,
                "{} coverage {c} below nominal at fault rate {rate}",
                aggregate.name()
            );
        }
    }
}

#[test]
fn bounds_never_violated_under_injected_faults_at_strict_delta() {
    for rate in [0.05, 0.20] {
        for aggregate in [Aggregate::Avg, Aggregate::Max { r: 0.99 }] {
            let (c, lost) = faulted_coverage(aggregate, rate, STRICT_DELTA);
            assert!(lost > 0, "rate {rate} must actually lose frames");
            assert!(
                c == 1.0,
                "{} violated a δ=1e-6 bound at fault rate {rate} (coverage {c}): \
                 survivor-widening is unsound",
                aggregate.name()
            );
        }
    }
}

#[test]
fn unrepaired_bounds_fail_under_strong_bias() {
    // The negative control: without repair, heavy resolution degradation
    // at a generous sampling fraction produces confidently wrong bounds.
    let set = InterventionSet::sampling(0.4).with_resolution(Resolution::square(128));
    let c = coverage(Aggregate::Avg, &set, false);
    assert!(
        c < 0.5,
        "expected the naive bound to be misleading under bias, coverage={c}"
    );
}
