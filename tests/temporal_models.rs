//! The §7 caveat, end-to-end: reduced frame sampling is NOT a random
//! intervention for sequence models (their outputs change with the
//! effective inter-frame stride), so the direct bound is invalid — but
//! profile repair with a neighbour-retaining correction set still covers.

use smokescreen::core::{estimate_from_outputs, repair::corrected_bound, Aggregate};
use smokescreen::core::correction::CorrectionSet;
use smokescreen::models::temporal::{MotionEnergyModel, SequenceModel};
use smokescreen::stats::sample::sample_indices;
use smokescreen::video::synth::DatasetPreset;

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

/// Outputs of the sequence model on a sampled sub-video: each sampled
/// frame's predecessor is the *previous sampled frame*, so the stride is
/// the gap the sampling created — this is what the model would actually
/// see on degraded video.
fn sampled_outputs(
    corpus: &smokescreen::video::VideoCorpus,
    model: &MotionEnergyModel,
    fraction: f64,
    seed: u64,
) -> Vec<f64> {
    let n = ((corpus.len() as f64 * fraction) as usize).max(2);
    let mut idx = sample_indices(corpus.len(), n, seed).unwrap();
    idx.sort_unstable();
    idx.windows(2)
        .map(|w| model.output(corpus, w[1], w[1] - w[0]))
        .collect()
}

#[test]
fn sampling_biases_sequence_models_and_repair_rescues_the_bound() {
    let corpus = DatasetPreset::Detrac.generate(41).slice(0, 5_000);
    let model = MotionEnergyModel;

    // Ground truth: stride-1 motion energy over the full video.
    let truth_outputs = model.outputs_at_stride(&corpus, 1);
    let truth = mean(&truth_outputs);

    // Degraded: 10% sampling stretches the effective stride ~10×,
    // inflating motion energy systematically.
    let outputs = sampled_outputs(&corpus, &model, 0.1, 7);
    let degraded = estimate_from_outputs(Aggregate::Avg, &outputs, corpus.len(), 0.05).unwrap();
    let true_err = (degraded.y_approx() - truth).abs() / truth;
    assert!(
        true_err > 0.5,
        "sampling should badly bias a sequence model: err={true_err}"
    );
    assert!(
        degraded.err_b() < true_err,
        "the naive bound must fail here ({} vs {true_err}) — this is the §7 caveat",
        degraded.err_b()
    );

    // Correction set: a brief window where the camera ships frames at the
    // undegraded rate, so the model retains stride-1 neighbours (§3.3.1:
    // "it may be acceptable to permit a lower level of degradation for
    // just a limited amount of time").
    let m = corpus.len() / 20;
    let values: Vec<f64> = sample_indices(corpus.len(), m, 11)
        .unwrap()
        .into_iter()
        .map(|i| model.output(&corpus, i, 1))
        .collect();
    let correction = CorrectionSet {
        estimate: estimate_from_outputs(Aggregate::Avg, &values, corpus.len(), 0.05).unwrap(),
        fraction: m as f64 / corpus.len() as f64,
        values,
        growth_curve: Vec::new(),
    };

    let repaired = corrected_bound(&degraded, &correction).unwrap();
    assert!(
        repaired >= true_err,
        "repair must cover the sequence-model bias: repaired={repaired} true={true_err}"
    );
}

#[test]
fn stride_distribution_shift_is_monotone() {
    // Sanity: the bias direction is predictable — more aggressive
    // sampling (larger stride) means more motion energy per output.
    let corpus = DatasetPreset::Detrac.generate(42).slice(0, 4_000);
    let model = MotionEnergyModel;
    let m10 = mean(&sampled_outputs(&corpus, &model, 0.5, 3));
    let m02 = mean(&sampled_outputs(&corpus, &model, 0.05, 3));
    assert!(
        m02 > m10,
        "5% sampling must inflate motion more than 50%: {m02} vs {m10}"
    );
}
