//! Deterministic soak: the serving daemon under a fixed seeded schedule
//! must be bit-for-bit reproducible regardless of its worker count.
//!
//! For each server width in {1, 8, 16} the test runs the *same* story:
//! four seeded clients drive a mixed put/get/query schedule over disjoint
//! key spaces, the daemon is killed mid-life (a simulated crash — no
//! shutdown compaction), the store is reopened and audited for lost acked
//! writes, a second daemon generation serves another client wave, and a
//! graceful shutdown compacts. Three artifacts must then be byte-identical
//! across widths:
//!
//! 1. every per-client transcript (response-by-response),
//! 2. the final compacted data segment,
//! 3. the final index segment.
//!
//! This works because determinism was designed in, not hoped for: client
//! key spaces are disjoint (per-key seqs depend only on that client's own
//! order), payloads are pure functions of the schedule position, and
//! compaction rewrites the store as a pure function of the surviving map
//! — so thread-count-dependent append interleavings cancel out.

use std::collections::BTreeMap;

use smokescreen_bench::serve_client::{client_camera, sample_profile};
use smokescreen_core::Profile;
use smokescreen_serve::{
    ProfileStore, Request, Response, ServeAddr, Server, ServerConfig, StoreKey,
};

const CLIENTS: usize = 4;
const PHASE1_REQUESTS: usize = 80;
const PHASE2_REQUESTS: usize = 40;
const IDENTITY: &str = "smokescreen-serve";

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 16
}

/// Everything a client saw, plus the acked writes it is owed.
#[derive(Default)]
struct ClientRun {
    transcript: Vec<String>,
    acked: BTreeMap<StoreKey, (u64, Profile)>,
}

/// Drives one client's seeded schedule against the daemon, recording a
/// deterministic transcript. Keys live under the client's own camera, so
/// every response is a pure function of (client, phase, prior shadow) —
/// never of how the server interleaved other clients. `acked` carries the
/// client's surviving writes from an earlier daemon generation.
fn run_client(
    addr: &ServeAddr,
    client: usize,
    phase: u64,
    requests: usize,
    acked: BTreeMap<StoreKey, (u64, Profile)>,
) -> ClientRun {
    let mut run = ClientRun {
        transcript: Vec::new(),
        acked,
    };
    let camera = client_camera(client);
    let mut rng = 0x5eed_0000 + client as u64 * 131 + phase * 7919;
    let mut conn = addr.connect().expect("client connects");
    for step in 0..requests {
        let grid = 1 + lcg(&mut rng) % 6;
        let key = StoreKey::new(camera, grid);
        let line = match lcg(&mut rng) % 10 {
            // Put-heavy mix: puts are the only state transitions, and
            // phase 1 must leave enough acked writes for the crash audit.
            0..=5 => {
                let profile = sample_profile(grid + phase * 100, 3 + (step % 5));
                match conn
                    .request(&Request::PutProfile {
                        key,
                        profile: profile.clone(),
                        expected_seq: None,
                    })
                    .expect("put answered")
                {
                    Response::Ok { seq } => {
                        let expected = run.acked.get(&key).map_or(0, |(s, _)| *s) + 1;
                        assert_eq!(seq, expected, "client {client} key {key:?} seq");
                        run.acked.insert(key, (seq, profile));
                        format!("{step} put {key:?} seq {seq}")
                    }
                    other => panic!("client {client} step {step}: put got {other:?}"),
                }
            }
            6 | 7 => match conn.request(&Request::GetProfile { key }).expect("get answered") {
                Response::Profile {
                    key: got_key,
                    seq,
                    profile,
                    drift,
                    stale,
                    degraded,
                } => {
                    assert_eq!(got_key, key);
                    let (want_seq, want_profile) =
                        run.acked.get(&key).expect("profile response implies prior put");
                    assert_eq!(seq, *want_seq);
                    assert_eq!(&profile, want_profile, "get returns the acked bytes");
                    assert!(drift.is_none(), "no outputs pushed, no drift status");
                    assert!(!stale && !degraded, "no faults armed, nothing degraded");
                    format!("{step} get {key:?} seq {seq} points {}", profile.points.len())
                }
                Response::Error { code, .. } => {
                    assert!(
                        !run.acked.contains_key(&key),
                        "acked key {key:?} must not be {code:?}"
                    );
                    format!("{step} get {key:?} {}", code.as_str())
                }
                other => panic!("client {client} step {step}: get got {other:?}"),
            },
            _ => {
                match conn
                    .request(&Request::QueryTradeoff {
                        key,
                        max_err: 0.2,
                        max_fraction: Some(0.8),
                        max_bytes: None,
                        max_energy_j: None,
                    })
                    .expect("query answered")
                {
                    Response::Tradeoff { matches } => {
                        let cheapest = matches
                            .first()
                            .map_or("-".to_string(), |p| format!("{:.3}", p.set.sample_fraction));
                        format!("{step} query {key:?} matches {} cheapest {cheapest}", matches.len())
                    }
                    Response::Error { code, .. } => {
                        assert!(!run.acked.contains_key(&key));
                        format!("{step} query {key:?} {}", code.as_str())
                    }
                    other => panic!("client {client} step {step}: query got {other:?}"),
                }
            }
        };
        run.transcript.push(line);
    }
    run
}

/// Runs all clients of one phase concurrently and returns their runs in
/// client order. `shadows[c]` is client `c`'s acked map from the prior
/// generation (empty maps for a fresh store).
fn run_phase(
    addr: &ServeAddr,
    phase: u64,
    requests: usize,
    shadows: Vec<BTreeMap<StoreKey, (u64, Profile)>>,
) -> Vec<ClientRun> {
    let handles: Vec<_> = shadows
        .into_iter()
        .enumerate()
        .map(|(client, acked)| {
            let addr = addr.clone();
            std::thread::spawn(move || run_client(&addr, client, phase, requests, acked))
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect()
}

/// One full daemon life at a given worker count: serve → kill → audit →
/// serve again → graceful shutdown. Returns the transcripts and the final
/// on-disk bytes.
fn soak_at_width(threads: usize) -> (Vec<Vec<String>>, Vec<u8>, Vec<u8>) {
    let tag = format!("smk-soak-w{threads}-{}", std::process::id());
    let dir = std::env::temp_dir().join(&tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = std::env::temp_dir().join(format!("{tag}.sock"));
    let _ = std::fs::remove_file(&sock);
    let addr = ServeAddr::Unix(sock);

    // Generation 1: seeded load, then a simulated crash.
    let server = Server::new(ServerConfig::new(addr.clone(), &dir).with_threads(threads))
        .spawn()
        .expect("gen-1 daemon");
    let phase1 = run_phase(
        server.addr(),
        1,
        PHASE1_REQUESTS,
        vec![BTreeMap::new(); CLIENTS],
    );
    let report = server.kill().expect("gen-1 kill");
    assert!(!report.graceful, "kill is not a graceful stop");
    assert!(report.compaction.is_none(), "a crash compacts nothing");
    assert_eq!(report.stats.quarantined_records, 0);

    // Crash audit: reopen the store cold and verify every acked write of
    // every client survived — the ack IS the durability guarantee.
    {
        let (mut store, replay) = ProfileStore::open(&dir, IDENTITY).expect("post-crash reopen");
        assert_eq!(replay.quarantined_records, 0, "clean kill loses nothing");
        assert!(!replay.torn_tail);
        let mut expected = 0;
        for run in &phase1 {
            expected += run.acked.len();
            for (key, (seq, profile)) in &run.acked {
                let (got_seq, got_profile) = store
                    .get(*key)
                    .expect("audit get")
                    .unwrap_or_else(|| panic!("acked write {key:?} lost in crash"));
                assert_eq!(got_seq, *seq);
                assert_eq!(&*got_profile, profile);
            }
        }
        assert_eq!(store.len(), expected, "no phantom keys either");
    } // drop the audit handle before the next daemon takes the dir

    // Generation 2: a second daemon picks the store back up, serves
    // another wave, and this time retires gracefully.
    let server = Server::new(ServerConfig::new(addr, &dir).with_threads(threads))
        .spawn()
        .expect("gen-2 daemon");
    let phase2 = run_phase(
        server.addr(),
        2,
        PHASE2_REQUESTS,
        phase1.iter().map(|run| run.acked.clone()).collect(),
    );
    let report = server.shutdown().expect("gen-2 shutdown");
    assert!(report.graceful);
    assert!(report.compaction.is_some(), "graceful shutdown compacts");
    assert_eq!(report.stats.quarantined_records, 0);

    let data = std::fs::read(dir.join("profiles.data")).unwrap();
    let index = std::fs::read(dir.join("profiles.idx")).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    let transcripts = phase1
        .iter()
        .chain(phase2.iter())
        .map(|run| run.transcript.clone())
        .collect();
    (transcripts, data, index)
}

#[test]
fn soak_is_deterministic_across_server_widths() {
    let (transcripts_1, data_1, index_1) = soak_at_width(1);
    assert!(!data_1.is_empty() && !index_1.is_empty());
    assert_eq!(transcripts_1.len(), CLIENTS * 2);
    // The schedule actually exercised the store: phase 1 alone acks at
    // least one write per client (put probability 0.6 over 80 steps).
    for (client, transcript) in transcripts_1.iter().take(CLIENTS).enumerate() {
        assert!(
            transcript.iter().any(|line| line.contains(" put ")),
            "client {client} never put"
        );
    }

    for width in [8usize, 16] {
        let (transcripts, data, index) = soak_at_width(width);
        assert_eq!(
            transcripts, transcripts_1,
            "per-client transcripts diverged at width {width}"
        );
        assert_eq!(
            data, data_1,
            "final data segment not byte-identical at width {width}"
        );
        assert_eq!(
            index, index_1,
            "final index segment not byte-identical at width {width}"
        );
    }
}
