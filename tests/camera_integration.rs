//! Integration: the policy arithmetic administrators actually act on —
//! what each intervention knob buys in bytes, joules, and exposure, and
//! that the accounting is internally consistent.

use smokescreen::camera::{Camera, Fleet, Link, PrivacyAuditor};
use smokescreen::degrade::{DegradedView, InterventionSet, RestrictionIndex};
use smokescreen::video::codec::Quality;
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::{ObjectClass, Resolution};

fn fleet() -> Fleet {
    Fleet {
        cameras: vec![Camera::new(
            "cam",
            DatasetPreset::NightStreet.generate(90).slice(0, 5_000),
            Link::SENSOR_NET,
        )],
    }
}

#[test]
fn each_knob_buys_its_own_policy_good() {
    let f = fleet();
    let base = f.transmit_all(&InterventionSet::none(), 1).unwrap();

    // Sampling: bytes fall proportionally.
    let sampled = f.transmit_all(&InterventionSet::sampling(0.25), 1).unwrap();
    let ratio = sampled.total_bytes() as f64 / base.total_bytes() as f64;
    assert!((ratio - 0.25).abs() < 0.01, "ratio={ratio}");

    // Resolution: bytes fall quadratically in the side length.
    let shrunk = f
        .transmit_all(&InterventionSet::none().with_resolution(Resolution::square(160)), 1)
        .unwrap();
    let expected = (160.0f64 * 160.0) / (640.0 * 640.0);
    let ratio = shrunk.total_bytes() as f64 / base.total_bytes() as f64;
    assert!((ratio - expected).abs() / expected < 0.05, "ratio={ratio}");

    // Compression: fewer bytes at identical geometry.
    let compressed = f
        .transmit_all(&InterventionSet::none().with_quality(Quality::new(0.3)), 1)
        .unwrap();
    assert!(compressed.total_bytes() < base.total_bytes());

    // Blur: same bytes (frames unchanged in size), less exposure.
    let blurred = f
        .transmit_all(
            &InterventionSet::none().with_blur(&[ObjectClass::Person, ObjectClass::Face]),
            1,
        )
        .unwrap();
    assert_eq!(blurred.total_bytes(), base.total_bytes());
    assert!(blurred.total_exposure() < base.total_exposure() * 0.05);

    // Removal: both bytes and exposure fall.
    let removed = f
        .transmit_all(
            &InterventionSet::none().with_restricted(&[ObjectClass::Person, ObjectClass::Face]),
            1,
        )
        .unwrap();
    assert!(removed.total_bytes() < base.total_bytes());
    assert_eq!(removed.total_exposure(), 0.0);
}

#[test]
fn link_time_is_bytes_over_bandwidth() {
    let f = fleet();
    let report = f.transmit_all(&InterventionSet::sampling(0.1), 2).unwrap();
    let cam = &report.cameras[0];
    let expected = cam.bytes as f64 * 8.0 / Link::SENSOR_NET.bandwidth_bps as f64;
    assert!((cam.transmit_seconds - expected).abs() < 1e-9);
}

#[test]
fn auditor_view_totals_match_per_frame_sums() {
    let corpus = DatasetPreset::Detrac.generate(91).slice(0, 800);
    let idx =
        RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person, ObjectClass::Face]);
    let view = DegradedView::new(&corpus, InterventionSet::none(), &idx, 4).unwrap();
    let auditor = PrivacyAuditor::default();
    let total = auditor.score_view(&view);

    let mut shipped = 0usize;
    let mut faces = 0.0;
    let res = view.resolution();
    for i in 0..view.len() {
        let r = auditor.score_frame(&view.frame(i).unwrap(), res);
        shipped += r.sensitive_objects_shipped;
        faces += r.recognizable_faces;
    }
    assert_eq!(total.sensitive_objects_shipped, shipped);
    assert!((total.recognizable_faces - faces).abs() < 1e-9);
}
