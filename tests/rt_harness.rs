//! Acceptance tests for the in-tree runtime (`smokescreen-rt`), which
//! replaces every external dependency the workspace used to carry:
//! seeded PRNG + distributions (rand/rand_distr), JSON (serde), locks
//! (parking_lot), and the property-test harness (proptest).
//!
//! These tests pin down the behaviours the rest of the system leans on:
//! bit-exact stream reproducibility, distribution moments, and lossless
//! JSON round-trips of the degradation-accuracy profile.

use smokescreen::core::{Aggregate, Profile, ProfilePoint};
use smokescreen::degrade::InterventionSet;
use smokescreen::video::codec::Quality;
use smokescreen::video::{ObjectClass, Resolution};
use smokescreen_rt::json::{FromJson, Json, ToJson};
use smokescreen_rt::rng::{Distribution, LogNormal, Poisson, StdRng};

// ---------------------------------------------------------------------------
// PRNG reproducibility
// ---------------------------------------------------------------------------

#[test]
fn prng_streams_replay_bit_exactly_per_seed() {
    for seed in [0u64, 1, 42, u64::MAX] {
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..2_000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

#[test]
fn prng_seeds_decorrelate_streams() {
    let mut a = StdRng::seed_from_u64(7);
    let mut b = StdRng::seed_from_u64(8);
    let collisions = (0..1_000).filter(|_| a.next_u64() == b.next_u64()).count();
    assert_eq!(collisions, 0, "adjacent seeds must not share a stream");
}

#[test]
fn prng_known_answer_stream_is_stable_across_releases() {
    // Frozen first draws for seed 12345. If this test ever fails, the
    // generator changed and every seeded experiment in the repo silently
    // reshuffled — treat as a breaking change, not a test to update.
    let mut rng = StdRng::seed_from_u64(12345);
    let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    let mut again = StdRng::seed_from_u64(12345);
    let replay: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
    assert_eq!(first, replay);
    // Derived draws replay too (floats, ranges, bools share the stream).
    let mut c = StdRng::seed_from_u64(12345);
    let mut d = StdRng::seed_from_u64(12345);
    for _ in 0..500 {
        assert_eq!(c.gen_f64().to_bits(), d.gen_f64().to_bits());
        assert_eq!(c.gen_range(0usize..1_000), d.gen_range(0usize..1_000));
        assert_eq!(c.gen_bool(0.3), d.gen_bool(0.3));
    }
}

// ---------------------------------------------------------------------------
// Distribution moments
// ---------------------------------------------------------------------------

fn mean_and_var(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

#[test]
fn poisson_moments_match_both_sampler_branches() {
    // λ < 10 exercises the Knuth branch; λ ≥ 10 the PTRS branch.
    for (lambda, seed) in [(2.5f64, 11u64), (48.0, 13)] {
        let dist = Poisson::new(lambda).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let draws: Vec<f64> = (0..60_000).map(|_| dist.sample(&mut rng)).collect();
        let (mean, var) = mean_and_var(&draws);
        // Poisson: mean = var = λ. 60k draws put the standard error of the
        // mean at √(λ/60000); 5σ tolerances keep the test deterministic-ish.
        let tol = 5.0 * (lambda / 60_000.0).sqrt();
        assert!((mean - lambda).abs() < tol, "λ={lambda}: mean {mean}");
        assert!(
            (var - lambda).abs() < lambda * 0.05,
            "λ={lambda}: var {var}"
        );
        assert!(draws.iter().all(|&x| x >= 0.0 && x.fract() == 0.0));
    }
}

#[test]
fn lognormal_moments_match_closed_form() {
    let (mu, sigma) = (0.4f64, 0.5f64);
    let dist = LogNormal::new(mu, sigma).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let draws: Vec<f64> = (0..60_000).map(|_| dist.sample(&mut rng)).collect();
    let (mean, var) = mean_and_var(&draws);
    let expected_mean = (mu + sigma * sigma / 2.0).exp();
    let expected_var = ((sigma * sigma).exp() - 1.0) * (2.0 * mu + sigma * sigma).exp();
    assert!(
        (mean - expected_mean).abs() / expected_mean < 0.02,
        "mean {mean} vs {expected_mean}"
    );
    assert!(
        (var - expected_var).abs() / expected_var < 0.10,
        "var {var} vs {expected_var}"
    );
    assert!(draws.iter().all(|&x| x > 0.0));
}

// ---------------------------------------------------------------------------
// JSON round-trip on the degradation-accuracy profile
// ---------------------------------------------------------------------------

fn fixture_profile() -> Profile {
    Profile {
        corpus: "night-street".into(),
        model: "sim-yolov4".into(),
        class: ObjectClass::Car,
        aggregate: Aggregate::Max { r: 0.99 },
        delta: 0.05,
        points: vec![
            ProfilePoint {
                set: InterventionSet::sampling(0.05),
                y_approx: 3.0,
                err_b: 0.12,
                corrected: false,
                n: 250,
            },
            ProfilePoint {
                set: InterventionSet::sampling(0.2)
                    .with_resolution(Resolution::square(160))
                    .with_restricted(&[ObjectClass::Person, ObjectClass::Face])
                    .with_blur(&[ObjectClass::Face])
                    .with_noise(0.25)
                    .with_quality(Quality::new(0.7)),
                y_approx: 2.5,
                err_b: 0.31,
                corrected: true,
                n: 1_000,
            },
        ],
    }
}

#[test]
fn degradation_profile_round_trips_through_json() {
    let profile = fixture_profile();
    let encoded = profile.to_json().unwrap();
    let decoded = Profile::from_json(&encoded).unwrap();
    assert_eq!(decoded, profile);
    // Encoding is deterministic (sorted object keys), so re-encoding the
    // decoded profile is byte-identical.
    assert_eq!(decoded.to_json().unwrap(), encoded);
}

#[test]
fn profile_json_survives_whitespace_mangling() {
    let encoded = fixture_profile().to_json().unwrap();
    let compact: String = encoded.split_whitespace().collect::<Vec<_>>().join("");
    // Compacting is only safe because the fixture has no spaces inside
    // string values that matter; "night-street" and "sim-yolov4" have none.
    let decoded = Profile::from_json(&compact).unwrap();
    assert_eq!(decoded, fixture_profile());
}

#[test]
fn profile_json_rejects_garbage() {
    assert!(Profile::from_json("").is_err());
    assert!(Profile::from_json("{").is_err());
    assert!(Profile::from_json("[1, 2, 3]").is_err());
    assert!(Profile::from_json(r#"{"corpus": "x"}"#).is_err());
}

#[test]
fn json_value_model_round_trips_edge_cases() {
    for text in [
        "null",
        "true",
        "-0.5",
        "1e-9",
        r#""""#,
        r#""\"\\\/\b\f\n\r\t""#,
        r#""é😀""#,
        "[]",
        "{}",
        r#"{"a":[1,{"b":null}],"c":"d"}"#,
    ] {
        let v = Json::parse(text).unwrap();
        let re = Json::parse(&v.encode()).unwrap();
        assert_eq!(v, re, "round-trip failed for {text}");
    }
    // Objects encode with sorted keys regardless of insertion order.
    let a = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
    let b = Json::parse(r#"{"a":2,"z":1}"#).unwrap();
    assert_eq!(a.encode(), b.encode());
}

#[test]
fn tojson_fromjson_primitives_round_trip() {
    let xs: Vec<f64> = vec![0.0, -1.5, 3.25];
    assert_eq!(Vec::<f64>::from_json(&xs.to_json()).unwrap(), xs);
    let opt: Option<u64> = Some(9);
    assert_eq!(Option::<u64>::from_json(&opt.to_json()).unwrap(), opt);
    let none: Option<u64> = None;
    assert_eq!(Option::<u64>::from_json(&none.to_json()).unwrap(), none);
    assert!(u64::from_json(&Json::Num(-1.0)).is_err());
    assert!(u64::from_json(&Json::Num(1.5)).is_err());
}
