//! Zero-alloc proof for the fraction-ladder cell path (ISSUE 8).
//!
//! `profile_cell` holds one reusable [`RangeOutputs`] scratch across the
//! ladder, the cache answers warm `try_count` probes from a per-thread
//! memo by reference, and the kernels ingest rung slices without
//! temporary buffers. This test pins the sum of those claims with the
//! counting allocator from `rt::bench::alloc`: once the scratch and the
//! cache are warm, replaying the exact ladder loop `profile_cell` runs
//! must perform **zero** heap allocations on this thread.
//!
//! The `cell_path_steady_ingest` trajectory bench records the same number
//! per run; full `trajectory run`s gate on it being zero.

use smokescreen::core::{Aggregate, AggregateKernel};
use smokescreen::degrade::{DegradedView, InterventionSet, RangeOutputs, RestrictionIndex};
use smokescreen::models::{OutputCache, SimYoloV4};
use smokescreen::rt::bench::alloc;
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::ObjectClass;

struct Fixture {
    corpus: smokescreen::video::VideoCorpus,
    yolo: SimYoloV4,
    restrictions: RestrictionIndex,
}

fn fixture() -> Fixture {
    let corpus = DatasetPreset::Detrac.generate(5).slice(0, 400);
    let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
    Fixture {
        corpus,
        yolo: SimYoloV4::new(5),
        restrictions,
    }
}

/// Ladder rung boundaries: 20 equal steps over the whole view, exactly
/// the disjoint-prefix ranges `profile_cell` fetches.
fn rung_bounds(len: usize) -> Vec<usize> {
    (0..=20).map(|i| i * len / 20).collect()
}

#[test]
fn warm_cell_path_performs_no_heap_allocation() {
    let fx = fixture();
    let view = DegradedView::new(
        &fx.corpus,
        InterventionSet::sampling(1.0),
        &fx.restrictions,
        3,
    )
    .unwrap();
    let cache = OutputCache::new(&fx.yolo);
    let bounds = rung_bounds(view.len());
    let mut scratch = RangeOutputs::default();

    // First warm pass: runs the model once per frame and fills the
    // shared shards. Cold inserts deliberately do NOT warm the memo.
    for w in bounds.windows(2) {
        view.try_outputs_cached_range_into(&cache, ObjectClass::Car, w[0]..w[1], &mut scratch);
    }
    // Second warm pass: the first shard *read* hit per key copies each
    // entry into this thread's memo layer and grows the scratch to the
    // largest rung it will ever be asked for.
    let mut warm = AggregateKernel::new(Aggregate::Avg);
    for w in bounds.windows(2) {
        view.try_outputs_cached_range_into(&cache, ObjectClass::Car, w[0]..w[1], &mut scratch);
        warm.extend(&scratch.values);
    }
    assert!(warm.n() > 0, "fixture must produce outputs");

    // Steady state: the identical ladder — fetch into the reused
    // scratch, slice-ingest, estimate per rung — must not touch the
    // heap. AVG's kernel holds O(1) state, so even its construction
    // inside the measured region is allocation-free.
    let (stats, n) = alloc::measure(|| {
        let mut kernel = AggregateKernel::new(Aggregate::Avg);
        for w in bounds.windows(2) {
            view.try_outputs_cached_range_into(
                &cache,
                ObjectClass::Car,
                w[0]..w[1],
                &mut scratch,
            );
            kernel.extend(&scratch.values);
            std::hint::black_box(kernel.estimate(fx.corpus.len(), 0.05).ok());
        }
        kernel.n()
    });
    assert_eq!(n, warm.n(), "steady pass must ingest the same samples");
    assert_eq!(
        stats,
        alloc::AllocStats::default(),
        "warm AVG cell path allocated in steady state"
    );
}

#[test]
fn presized_order_kernel_ingests_rungs_without_allocating() {
    // The order-statistic kernels (MAX/MIN/QUANTILE) keep a sorted buffer
    // plus a batch scratch; `with_capacity` pre-sizes both, so a sweep to
    // a known terminal sample size ingests every rung allocation-free
    // (`sort_unstable_by` sorts in place — no driftsort scratch).
    let fx = fixture();
    let view = DegradedView::new(
        &fx.corpus,
        InterventionSet::sampling(1.0),
        &fx.restrictions,
        3,
    )
    .unwrap();
    let cache = OutputCache::new(&fx.yolo);
    let bounds = rung_bounds(view.len());
    let mut scratch = RangeOutputs::default();

    // Warm the cache, the memo (second pass — read hits, not cold
    // inserts, are what warm the memo), and the fetch scratch.
    for _ in 0..2 {
        for w in bounds.windows(2) {
            view.try_outputs_cached_range_into(&cache, ObjectClass::Car, w[0]..w[1], &mut scratch);
        }
    }

    let mut kernel = AggregateKernel::with_capacity(Aggregate::Max { r: 0.99 }, view.len());
    let (stats, n) = alloc::measure(|| {
        for w in bounds.windows(2) {
            view.try_outputs_cached_range_into(
                &cache,
                ObjectClass::Car,
                w[0]..w[1],
                &mut scratch,
            );
            kernel.extend(&scratch.values);
            std::hint::black_box(kernel.estimate(fx.corpus.len(), 0.05).ok());
        }
        kernel.n()
    });
    assert_eq!(n, view.len(), "every frame's output must be ingested");
    assert_eq!(
        stats,
        alloc::AllocStats::default(),
        "pre-sized MAX cell path allocated in steady state"
    );
}
