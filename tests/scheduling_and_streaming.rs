//! Integration: time-windowed intervention schedules + online estimation.
//!
//! Models a realistic deployment: business hours run a strict privacy
//! policy (person removal, low sampling), a short calibration window runs
//! undegraded to collect a correction set (§3.3.1's "lower level of
//! degradation for a limited amount of time"), and the night default is a
//! moderate sampling policy whose query is answered online with early
//! stopping.

use smokescreen::core::correction::CorrectionSet;
use smokescreen::core::{
    corrected_bound, estimate_from_outputs, true_relative_error, Aggregate, StreamingEstimator,
    StreamingStatus,
};
use smokescreen::degrade::{InterventionSet, RestrictionIndex, Schedule};
use smokescreen::models::{Detector, SimYoloV4};
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::ObjectClass;

#[test]
fn scheduled_calibration_window_repairs_the_strict_window() {
    let corpus = DatasetPreset::Detrac.generate(71).slice(0, 9_000);
    let yolo = SimYoloV4::new(5);
    let fps = corpus.fps;
    let t = |frames: usize| frames as f64 / fps;

    let mut schedule = Schedule::new(InterventionSet::sampling(0.3));
    schedule
        .add_window(
            "business-hours",
            t(0),
            t(6_000),
            InterventionSet::sampling(0.2).with_restricted(&[ObjectClass::Person]),
        )
        .unwrap();
    schedule
        .add_window("calibration", t(6_000), t(7_000), InterventionSet::sampling(0.8))
        .unwrap();

    let parts = schedule.partition(&corpus);
    assert_eq!(parts.len(), 3);
    let views = schedule
        .views(
            &parts,
            |c| RestrictionIndex::from_ground_truth(c, &[ObjectClass::Person]),
            13,
        )
        .unwrap();

    // Ground truth over the business-hours window.
    let business_corpus = &parts
        .iter()
        .find(|(l, _, _)| l == "business-hours")
        .unwrap()
        .2;
    let truth_outputs: Vec<f64> = business_corpus
        .frames()
        .iter()
        .map(|f| yolo.count(f, business_corpus.native_resolution, ObjectClass::Car))
        .collect();

    // Strict-window estimate (biased by person removal).
    let business_view = &views.iter().find(|(l, _)| l == "business-hours").unwrap().1;
    let outputs = business_view.outputs(&yolo, ObjectClass::Car);
    let degraded =
        estimate_from_outputs(Aggregate::Avg, &outputs, business_corpus.len(), 0.05).unwrap();

    // Calibration-window correction set (random sampling only, scoped to
    // a similar stretch of the same video).
    let calib_view = &views.iter().find(|(l, _)| l == "calibration").unwrap().1;
    let values = calib_view.outputs(&yolo, ObjectClass::Car);
    let correction = CorrectionSet {
        estimate: estimate_from_outputs(Aggregate::Avg, &values, business_corpus.len(), 0.05)
            .unwrap(),
        fraction: values.len() as f64 / business_corpus.len() as f64,
        values,
        growth_curve: Vec::new(),
    };

    let repaired = corrected_bound(&degraded, &correction).unwrap();
    let true_err = true_relative_error(Aggregate::Avg, &degraded, &truth_outputs);
    assert!(
        repaired >= true_err,
        "calibration-window repair must cover: repaired={repaired} true={true_err}"
    );
}

#[test]
fn night_window_streams_with_early_stop() {
    let corpus = DatasetPreset::Detrac.generate(72).slice(0, 6_000);
    let yolo = SimYoloV4::new(6);
    let restrictions = RestrictionIndex::from_ground_truth(&corpus, &[]);
    let view = smokescreen::degrade::DegradedView::new(
        &corpus,
        InterventionSet::sampling(0.5),
        &restrictions,
        21,
    )
    .unwrap();

    let mut streaming =
        StreamingEstimator::new(Aggregate::Avg, corpus.len(), 0.05).with_stop_at(0.2);
    let res = view.resolution();
    let mut consumed = 0;
    for i in 0..view.len() {
        let frame = view.frame(i).unwrap();
        consumed += 1;
        if streaming
            .push(yolo.count(&frame, res, ObjectClass::Car))
            .unwrap()
            == StreamingStatus::Converged
        {
            break;
        }
    }
    assert!(consumed < view.len(), "early stop must fire: {consumed}");
    assert!(streaming.estimate().unwrap().err_b() <= 0.25);
}
