//! Content-fault robustness suite: the audit matrix as a test, perturbed
//! determinism across thread counts and chaos fault rates, perturbation
//! non-vacuousness at the detector-output level, and the golden pinning
//! the `ROBUST_*.json` schema.
//!
//! The structural-schema golden lives at
//! `tests/golden/content_shift_schema.json`; bless intentional format
//! changes with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test content_shift
//! ```
//!
//! and bump `robust::SCHEMA`.

use std::fs;
use std::path::PathBuf;

use smokescreen::core::{
    drift_score, Aggregate, DriftBaseline, GeneratorConfig, ProfileGenerator, Workload,
    DEFAULT_DRIFT_THRESHOLD, DEFAULT_DRIFT_WINDOW,
};
use smokescreen::degrade::{CandidateGrid, RestrictionIndex};
use smokescreen::models::{Detector, SimYoloV4};
use smokescreen_rt::fault::FaultPlan;
use smokescreen_rt::json::{Json, ToJson};
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::{ObjectClass, PerturbKind, PerturbPlan, Resolution, VideoCorpus};
use smokescreen_bench::robust::{
    check, robust_file_name, run, AuditCell, AuditConfig, RobustAudit, StreamAudit, SCHEMA,
};
use smokescreen_bench::trajectory::schema_of;

fn outputs_of(corpus: &VideoCorpus, detector: &dyn Detector) -> Vec<f64> {
    Workload {
        corpus,
        detector,
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
    }
    .population_outputs()
}

// ---------------------------------------------------------------------------
// The audit matrix as a test.
// ---------------------------------------------------------------------------

#[test]
fn smoke_audit_matrix_holds_hard_invariants() {
    let cfg = AuditConfig::smoke();
    let audit = run(&cfg, 7, "test".into());
    // 2 corpora × (control + 1 kind × 1 rate) × 3 aggregates × 3 fractions.
    assert_eq!(audit.cells.len(), 36);
    assert_eq!(audit.streams.len(), 4);
    assert_eq!(audit.schema, SCHEMA);
    let violations = check(&audit);
    assert!(violations.is_empty(), "audit violations: {violations:?}");
}

#[test]
fn audit_round_trips_through_json_and_file() {
    let cfg = AuditConfig::smoke();
    let audit = run(&cfg, 7, "test".into());
    let dir = std::env::temp_dir().join("smokescreen_content_shift_roundtrip");
    let path = audit.save(&dir).unwrap();
    assert!(path.ends_with(robust_file_name(7)));
    let loaded = RobustAudit::load(&path).unwrap();
    assert_eq!(loaded, audit);
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Non-vacuousness: every perturbation kind changes what the detector sees.
// ---------------------------------------------------------------------------

#[test]
fn every_kind_changes_detector_outputs_at_high_rate() {
    let detector = SimYoloV4::new(5);
    let clean = DatasetPreset::Detrac.generate(5).slice(0, 1_000);
    let clean_outputs = outputs_of(&clean, &detector);
    for kind in PerturbKind::ALL {
        let perturbed = PerturbPlan::new(5, 0.5, kind).apply(&clean);
        let outputs = outputs_of(&perturbed, &detector);
        assert_ne!(
            outputs, clean_outputs,
            "{kind}: rate-0.5 perturbation left every detector output unchanged — \
             the audit matrix would be measuring nothing"
        );
    }
}

#[test]
fn zero_rate_plans_are_inert_on_corpora_and_outputs() {
    let detector = SimYoloV4::new(5);
    let clean = DatasetPreset::Detrac.generate(5).slice(0, 600);
    for kind in PerturbKind::ALL {
        let perturbed = PerturbPlan::new(5, 0.0, kind).apply(&clean);
        assert_eq!(format!("{perturbed:?}"), format!("{clean:?}"));
        assert_eq!(outputs_of(&perturbed, &detector), outputs_of(&clean, &detector));
    }
}

// ---------------------------------------------------------------------------
// Determinism: perturbed corpora and profiles replay bit-for-bit, at any
// thread count, with and without chaos faults.
// ---------------------------------------------------------------------------

#[test]
fn perturbed_corpora_replay_byte_identically() {
    let clean = DatasetPreset::NightStreet.generate(11).slice(0, 800);
    for kind in PerturbKind::ALL {
        let plan = PerturbPlan::new(11, 0.3, kind);
        let a = plan.apply(&clean);
        let b = plan.apply(&clean);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "{kind}: replay diverged");
    }
}

fn perturbed_profile(
    corpus: &VideoCorpus,
    threads: usize,
    faults: Option<FaultPlan>,
) -> (smokescreen::core::Profile, usize) {
    let detector = SimYoloV4::new(7);
    let workload = Workload {
        corpus,
        detector: &detector,
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
    };
    let restrictions = RestrictionIndex::from_ground_truth(corpus, &[ObjectClass::Person]);
    let grid = CandidateGrid::explicit(
        vec![0.02, 0.05, 0.1],
        vec![Resolution::square(320), Resolution::square(608)],
        vec![vec![], vec![ObjectClass::Person]],
    );
    let gen = ProfileGenerator::new(
        &workload,
        &restrictions,
        GeneratorConfig {
            seed: 7,
            threads,
            faults,
            ..GeneratorConfig::default()
        },
    );
    let (profile, report) = gen.generate(&grid, None).unwrap();
    (profile, report.model_runs)
}

#[test]
fn perturbed_profiles_are_byte_identical_across_threads_and_fault_rates() {
    let clean = DatasetPreset::Detrac.generate(7).slice(0, 1_200);
    let corpus = PerturbPlan::new(7, 0.25, PerturbKind::Occlusion).apply(&clean);
    for fault_rate in [0.0, 0.05] {
        let faults = Some(FaultPlan::new(99, fault_rate));
        let (reference, ref_runs) = perturbed_profile(&corpus, 1, faults);
        assert!(!reference.is_empty());
        let reference_bytes = reference.to_json().unwrap();
        for threads in [2usize, 8] {
            let (profile, runs) = perturbed_profile(&corpus, threads, faults);
            assert_eq!(
                profile.to_json().unwrap(),
                reference_bytes,
                "perturbed profile not byte-identical at {threads} threads, \
                 fault rate {fault_rate}"
            );
            assert_eq!(runs, ref_runs, "cache accounting diverged at {threads} threads");
        }
    }
    // The perturbed profile must differ from the clean one — otherwise the
    // thread sweep above proved determinism of a no-op.
    let (clean_profile, _) = perturbed_profile(&clean, 1, None);
    let (perturbed_profile_, _) = perturbed_profile(&corpus, 1, None);
    assert_ne!(
        clean_profile.to_json().unwrap(),
        perturbed_profile_.to_json().unwrap()
    );
}

// ---------------------------------------------------------------------------
// Drift detection at corpus scale.
// ---------------------------------------------------------------------------

#[test]
fn drift_scorer_flags_prevalence_drift_and_only_that_stream() {
    let detector = SimYoloV4::new(3);
    let clean = DatasetPreset::Detrac.generate(3).slice(0, 3_000);
    let baseline_corpus = DatasetPreset::Detrac.generate(104).slice(0, 3_000);
    let baseline = DriftBaseline::from_outputs(
        &outputs_of(&baseline_corpus, &detector),
        DEFAULT_DRIFT_WINDOW,
    )
    .unwrap();

    let clean_report = drift_score(
        &baseline,
        &outputs_of(&clean, &detector),
        DEFAULT_DRIFT_THRESHOLD,
    );
    assert!(
        !clean_report.flagged(),
        "false positive on a clean stream (max score {})",
        clean_report.max_score
    );

    let drifted = PerturbPlan::new(3, 0.3, PerturbKind::Drift).apply(&clean);
    let drift_report = drift_score(
        &baseline,
        &outputs_of(&drifted, &detector),
        DEFAULT_DRIFT_THRESHOLD,
    );
    assert!(
        drift_report.flagged(),
        "missed a prevalence-drift stream (max score {})",
        drift_report.max_score
    );
    assert!(drift_report.max_score > 2.0 * clean_report.max_score);
}

// ---------------------------------------------------------------------------
// Schema golden.
// ---------------------------------------------------------------------------

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/content_shift_schema.json")
}

/// A synthetic audit with every field populated: the golden pins the
/// *shape*, so representative values suffice — no matrix runs.
fn representative_audit() -> RobustAudit {
    RobustAudit {
        schema: SCHEMA.into(),
        pr: 7,
        git_rev: "0123456789ab".into(),
        smoke: true,
        trials: 12,
        frames: 1_500,
        delta: 0.05,
        strict_delta: 1e-6,
        drift_window: 256,
        drift_threshold: 4.0,
        cells: vec![AuditCell {
            corpus: "ua-detrac".into(),
            kind: "glare".into(),
            rate: 0.25,
            aggregate: "AVG".into(),
            fraction: 0.05,
            trials: 12,
            coverage_perturbed: 1.0,
            coverage_clean: 0.9,
            strict_violations: 0,
            mean_err_bound: 0.12,
            degraded: false,
        }],
        streams: vec![StreamAudit {
            corpus: "ua-detrac".into(),
            kind: "glare".into(),
            rate: 0.25,
            max_score: 2.5,
            windows_scored: 5,
            windows_flagged: 0,
            flagged: false,
        }],
    }
}

#[test]
fn content_shift_schema_matches_golden() {
    let schema = schema_of(&representative_audit().to_json());
    let encoded = schema.encode_pretty();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &encoded).unwrap();
        println!("blessed {}", path.display());
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun UPDATE_GOLDEN=1 cargo test --test content_shift to create it",
            path.display()
        )
    });
    assert_eq!(
        Json::parse(&golden).expect("golden parses"),
        schema,
        "ROBUST schema drifted from {} — if intentional, regen with \
         UPDATE_GOLDEN=1 and bump robust::SCHEMA",
        path.display()
    );
    // Stored exactly as the deterministic pretty encoding so
    // `robust run --schema-golden` can diff byte-wise too.
    assert_eq!(golden, encoded, "golden file is not the canonical encoding");
}

#[test]
fn schema_is_value_independent() {
    let a = representative_audit();
    let mut b = representative_audit();
    b.pr = 99;
    b.smoke = false;
    b.cells.push(b.cells[0].clone());
    b.cells[1].kind = "label-flip".into();
    b.cells[1].coverage_clean = 0.0;
    b.cells[1].degraded = true;
    b.streams.push(b.streams[0].clone());
    b.streams[1].kind = "drift".into();
    b.streams[1].flagged = true;
    assert_eq!(schema_of(&a.to_json()), schema_of(&b.to_json()));
}
