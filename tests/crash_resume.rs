//! Crash-consistency suite: checkpoint/resume for profile generation.
//!
//! The contract under test, over a matrix of (crash seed × thread count ×
//! fault rate):
//!
//! 1. **Bit-identity** — killing generation at any seeded crash point and
//!    resuming from the journal yields a profile byte-identical to an
//!    uninterrupted run, at 1/2/8 threads, with and without a 5% model
//!    fault rate. Loss/early-stop/quarantine accounting also matches.
//! 2. **Schedule independence** — the journal always holds a contiguous
//!    grid-order prefix, so `cells_resumed` and `journal_bytes` are
//!    deterministic at any thread count.
//! 3. **Corruption recovery** — a torn tail record, a mid-journal
//!    checksum flip, a wrong format version, and a zero-byte journal each
//!    quarantine cleanly: the damage is surfaced in
//!    `GenerationReport::journal_corrupt_records`, the affected cells are
//!    recomputed, and the profile never differs from the uninterrupted
//!    run. Corrupted journals never panic and never produce wrong
//!    profiles.
//! 4. **Inertness** — without a checkpoint directory the feature changes
//!    nothing: the no-checkpoint reference run is re-diffed against the
//!    pinned goldens under `tests/golden/`.
//!
//! Replay recipe: `SMOKESCREEN_CRASH_SEED` / `SMOKESCREEN_CRASH_RATE`
//! (plus the fault/thread variables) configure the env-driven run below
//! (see EXPERIMENTS.md "crash→resume matrix"); any failure replays
//! exactly from those values. Bless intentional profile changes with
//! `UPDATE_GOLDEN=1 cargo test --test crash_resume`.

use std::path::{Path, PathBuf};

use smokescreen::core::{
    Aggregate, CoreError, GenerationReport, GeneratorConfig, Profile, ProfileGenerator, Workload,
};
use smokescreen::degrade::{CandidateGrid, RestrictionIndex};
use smokescreen::models::{Detector, SimYoloV4};
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::{ObjectClass, Resolution};
use smokescreen_rt::fault::{CrashKind, CrashPlan, FaultPlan, CRASH_RATE_ENV, FAULT_RATE_ENV};
use smokescreen_rt::rng::StdRng;

const N_CELLS: usize = 6; // 3 resolutions × 2 removal combos

struct Fixture {
    corpus: smokescreen::video::VideoCorpus,
    detector: Box<dyn Detector>,
    grid: CandidateGrid,
}

fn fixture() -> Fixture {
    let corpus = DatasetPreset::Detrac.generate(29).slice(0, 1_200);
    let grid = CandidateGrid::explicit(
        vec![0.02, 0.05, 0.1],
        vec![
            Resolution::square(320),
            Resolution::square(416),
            Resolution::square(608),
        ],
        vec![vec![], vec![ObjectClass::Person]],
    );
    Fixture {
        corpus,
        detector: Box::new(SimYoloV4::new(29)),
        grid,
    }
}

fn generate(
    fx: &Fixture,
    threads: usize,
    faults: Option<FaultPlan>,
    checkpoint: Option<&Path>,
    crash: Option<CrashPlan>,
) -> Result<(Profile, GenerationReport), CoreError> {
    let workload = Workload {
        corpus: &fx.corpus,
        detector: fx.detector.as_ref(),
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
    };
    let restrictions = RestrictionIndex::from_ground_truth(&fx.corpus, &[ObjectClass::Person]);
    ProfileGenerator::new(
        &workload,
        &restrictions,
        GeneratorConfig {
            seed: 7,
            threads,
            faults,
            checkpoint: checkpoint.map(Path::to_path_buf),
            crash,
            ..GeneratorConfig::default()
        },
    )
    .generate(&fx.grid, None)
}

/// Reruns generation until it completes, counting injected crashes. Every
/// loop must terminate: each firing cell kills at most one run (durable
/// cells never recompute; a torn cell's re-scheduled tear is suppressed).
fn run_to_completion(
    fx: &Fixture,
    threads: usize,
    faults: Option<FaultPlan>,
    checkpoint: &Path,
    crash: Option<CrashPlan>,
) -> ((Profile, GenerationReport), usize) {
    let mut crashes = 0usize;
    loop {
        match generate(fx, threads, faults, Some(checkpoint), crash) {
            Ok(out) => return (out, crashes),
            Err(CoreError::CrashInjected { .. }) => {
                crashes += 1;
                assert!(
                    crashes <= N_CELLS + 1,
                    "crash→resume loop failed to converge"
                );
            }
            Err(other) => panic!("unexpected generation error: {other}"),
        }
    }
}

/// Expected crash count for a plan on this fixture: one killed run per
/// firing cell (decisions are pure functions of `(seed, cell)`).
fn expected_crashes(plan: &CrashPlan) -> usize {
    (0..N_CELLS as u64).filter(|&c| plan.crash_at(c).is_some()).count()
}

/// First `want` plan seeds that fire at least once on this fixture.
fn firing_seeds(rate: f64, want: usize) -> Vec<u64> {
    (1u64..10_000)
        .filter(|&s| expected_crashes(&CrashPlan::new(s, rate)) > 0)
        .take(want)
        .collect()
}

fn checkpoint_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "smokescreen-crash-resume-{}",
        std::process::id()
    ));
    let dir = dir.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The single journal file a run created under `dir`.
fn journal_file(dir: &Path) -> PathBuf {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("checkpoint dir exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "journal"))
        .collect();
    assert_eq!(files.len(), 1, "exactly one journal per workload: {files:?}");
    files.pop().unwrap()
}

#[test]
fn crash_resume_is_bit_identical_across_threads_and_fault_rates() {
    let fx = fixture();
    for fault_rate in [0.0, 0.05] {
        let faults = (fault_rate > 0.0).then(|| FaultPlan::new(42, fault_rate));
        let (reference, reference_report) = generate(&fx, 1, faults, None, None).unwrap();
        let reference_bytes = reference.to_json().unwrap();
        assert!(!reference.is_empty());

        let mut journal_bytes_seen = Vec::new();
        for crash_seed in firing_seeds(0.5, 2) {
            let plan = CrashPlan::new(crash_seed, 0.5);
            let expected = expected_crashes(&plan);
            let mut resumed_seen = Vec::new();
            for threads in [1usize, 2, 8, 16] {
                let dir = checkpoint_dir(&format!(
                    "matrix-r{fault_rate}-s{crash_seed}-t{threads}"
                ));
                let ((profile, report), crashes) =
                    run_to_completion(&fx, threads, faults, &dir, Some(plan));
                assert_eq!(
                    crashes, expected,
                    "seed {crash_seed}: every firing cell kills exactly one run"
                );
                assert!(crashes > 0, "picked seeds must actually fire");
                assert_eq!(
                    profile.to_json().unwrap(),
                    reference_bytes,
                    "rate {fault_rate} seed {crash_seed} threads {threads}: \
                     resumed profile diverged from the uninterrupted run"
                );
                // Loss/early-stop/quarantine accounting matches the
                // uninterrupted run; resume-specific counters are
                // schedule-independent (checked across threads below).
                assert_eq!(report.skipped_by_early_stop, reference_report.skipped_by_early_stop);
                assert_eq!(report.frames_lost, reference_report.frames_lost);
                assert_eq!(report.degraded_cells, reference_report.degraded_cells);
                assert!(report.cells_resumed > 0, "a resumed run splices something");
                // The completing run replays the journal left by the
                // *last* death: a torn append is surfaced as exactly one
                // quarantined record, a clean post-append death as none.
                let last_kind = (0..N_CELLS as u64)
                    .filter_map(|c| plan.crash_at(c))
                    .last()
                    .expect("seed fires");
                let expect_corrupt =
                    usize::from(matches!(last_kind, CrashKind::TornAppend { .. }));
                assert_eq!(report.journal_corrupt_records, expect_corrupt);
                resumed_seen.push(report.cells_resumed);
                journal_bytes_seen.push(report.journal_bytes);
                let _ = std::fs::remove_dir_all(&dir);
            }
            resumed_seen.dedup();
            assert_eq!(
                resumed_seen.len(),
                1,
                "seed {crash_seed}: cells_resumed must not depend on thread count"
            );
        }
        // The completed journal holds the same cells regardless of crash
        // seed or thread count, and its payloads exclude measured
        // timings: its size is a single deterministic number per rate.
        journal_bytes_seen.dedup();
        assert_eq!(
            journal_bytes_seen.len(),
            1,
            "rate {fault_rate}: journal_bytes must be schedule-independent"
        );
    }
}

#[test]
fn torn_write_crash_is_quarantined_and_recomputed() {
    // A seed whose only firing cell tears its record mid-append: the next
    // run must detect the torn tail, surface it, recompute the cell, and
    // not re-fire the tear (the crash→resume loop converges in one).
    let torn_seed = (1u64..20_000)
        .find(|&s| {
            let plan = CrashPlan::new(s, 0.5);
            let fires: Vec<CrashKind> =
                (0..N_CELLS as u64).filter_map(|c| plan.crash_at(c)).collect();
            fires.len() == 1 && matches!(fires[0], CrashKind::TornAppend { .. })
        })
        .expect("a torn-only seed exists");
    let fx = fixture();
    let (reference, _) = generate(&fx, 2, None, None, None).unwrap();

    let dir = checkpoint_dir("torn");
    let plan = CrashPlan::new(torn_seed, 0.5);
    let ((profile, report), crashes) = run_to_completion(&fx, 2, None, &dir, Some(plan));
    assert_eq!(crashes, 1);
    assert_eq!(profile.to_json().unwrap(), reference.to_json().unwrap());
    assert_eq!(
        report.journal_corrupt_records, 1,
        "the torn record must be surfaced, not silently repaired"
    );
    // The repaired journal is clean: a warm restart splices every cell.
    let (rerun, rerun_report) = generate(&fx, 2, None, Some(&dir), Some(plan)).unwrap();
    assert_eq!(rerun.to_json().unwrap(), reference.to_json().unwrap());
    assert_eq!(rerun_report.cells_resumed, N_CELLS);
    assert_eq!(rerun_report.journal_corrupt_records, 0);
    assert_eq!(rerun_report.model_runs, 0, "warm restart does no model work");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_journals_quarantine_cleanly_and_never_change_the_profile() {
    let fx = fixture();
    let (reference, _) = generate(&fx, 2, None, None, None).unwrap();
    let reference_bytes = reference.to_json().unwrap();
    let dir = checkpoint_dir("corruption");
    // Build a complete journal once; every scenario below corrupts a copy
    // of these bytes in place.
    let (_, seeded_report) = generate(&fx, 2, None, Some(&dir), None).unwrap();
    assert!(seeded_report.journal_bytes > 0);
    let path = journal_file(&dir);
    let pristine = std::fs::read(&path).unwrap();

    let corruptions: Vec<(&str, Box<dyn Fn(&mut Vec<u8>)>)> = vec![
        (
            "truncated final record",
            Box::new(|b: &mut Vec<u8>| {
                let keep = b.len() - 7;
                b.truncate(keep);
            }),
        ),
        (
            "checksum flip mid-journal",
            Box::new(|b: &mut Vec<u8>| {
                let at = b.len() * 2 / 3;
                b[at] ^= 0x01;
            }),
        ),
        (
            "wrong format version",
            Box::new(|b: &mut Vec<u8>| b[8] ^= 0xff),
        ),
        ("zero-byte journal", Box::new(|b: &mut Vec<u8>| b.clear())),
    ];
    for (label, corrupt) in corruptions {
        let mut bytes = pristine.clone();
        corrupt(&mut bytes);
        std::fs::write(&path, &bytes).unwrap();

        let (profile, report) = generate(&fx, 2, None, Some(&dir), None)
            .unwrap_or_else(|e| panic!("{label}: corrupted journal must not fail generation: {e}"));
        assert_eq!(
            profile.to_json().unwrap(),
            reference_bytes,
            "{label}: corruption must never produce a wrong profile"
        );
        assert!(
            report.journal_corrupt_records >= 1,
            "{label}: corruption must be surfaced in the report"
        );
        assert!(
            report.cells_resumed < N_CELLS,
            "{label}: damaged cells must be recomputed, not trusted"
        );
        // The run repaired the journal: it is byte-identical to the
        // pristine one again and a warm restart is clean.
        assert_eq!(std::fs::read(&path).unwrap(), pristine, "{label}: repair");
        let (_, warm) = generate(&fx, 2, None, Some(&dir), None).unwrap();
        assert_eq!(warm.cells_resumed, N_CELLS, "{label}");
        assert_eq!(warm.journal_corrupt_records, 0, "{label}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn env_configured_crash_resume_matrix_is_deterministic() {
    // The CI entry point: ci.sh runs this test across SMOKESCREEN_CRASH_SEED
    // × SMOKESCREEN_THREADS × SMOKESCREEN_FAULT_RATE, asserting every
    // combination's resumed profile byte-equals the pinned golden. When
    // the variables are absent (a bare `cargo test`), fixed fallbacks keep
    // the path exercised. The reference run below uses *no* checkpoint
    // directory, so diffing it against the golden also proves the feature
    // is inert when disabled.
    let crash = if std::env::var_os(CRASH_RATE_ENV).is_some() {
        CrashPlan::from_env()
    } else {
        Some(CrashPlan::new(firing_seeds(0.5, 1)[0], 0.5))
    };
    let faults = if std::env::var_os(FAULT_RATE_ENV).is_some() {
        FaultPlan::from_env()
    } else {
        None
    };
    let fx = fixture();
    // threads = 0: honor SMOKESCREEN_THREADS exactly as ci.sh sets it.
    let (reference, _) = generate(&fx, 0, faults, None, None).unwrap();
    let reference_bytes = reference.to_json().unwrap();

    if let Some(plan) = crash {
        let dir = checkpoint_dir(&format!("env-{}", plan.seed()));
        let ((profile, report), crashes) =
            run_to_completion(&fx, 0, faults, &dir, Some(plan));
        assert_eq!(crashes, expected_crashes(&plan));
        assert_eq!(profile.to_json().unwrap(), reference_bytes);
        // A torn final death legitimately surfaces one quarantined record
        // on the completing replay; a post-append death surfaces none.
        assert!(report.journal_corrupt_records <= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Golden comparison for the pinned configurations (fault seed 42):
    // fault-free and 5%. Covers every ci.sh matrix combination, since the
    // profile must not depend on crash seed or thread count.
    let golden_name = match faults {
        None => Some("crash_resume_rate0.json"),
        Some(p) if p.seed() == 42 && (p.total_rate() - 0.05).abs() < 1e-12 => {
            Some("crash_resume_rate005.json")
        }
        _ => None,
    };
    if let Some(name) = golden_name {
        let golden_path =
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&golden_path, &reference_bytes).unwrap();
        } else {
            let golden = std::fs::read_to_string(&golden_path)
                .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
            assert_eq!(
                reference_bytes, golden,
                "{name}: profile drifted from the pinned golden \
                 (bless intentional changes with UPDATE_GOLDEN=1)"
            );
        }
    }
}

#[test]
fn resume_composes_with_fault_injection() {
    // §-level requirement: crash→resume under a 5% model-fault plan.
    // Fault decisions are pure functions of (frame, resolution), so the
    // resumed halves of the run observe exactly the faults the
    // uninterrupted run observed — loss accounting must agree too.
    let fx = fixture();
    let faults = Some(FaultPlan::new(42, 0.05));
    let (reference, reference_report) = generate(&fx, 2, faults, None, None).unwrap();
    assert!(reference_report.faults_injected > 0, "the plan must bite");

    let plan = CrashPlan::new(firing_seeds(0.5, 2)[1], 0.5);
    let dir = checkpoint_dir("faults-compose");
    let ((profile, report), crashes) = run_to_completion(&fx, 8, faults, &dir, Some(plan));
    assert!(crashes > 0);
    assert_eq!(profile.to_json().unwrap(), reference.to_json().unwrap());
    assert_eq!(report.frames_lost, reference_report.frames_lost);
    assert_eq!(report.degraded_cells, reference_report.degraded_cells);
    // Fresh-work counters only count this process's work: a resumed run
    // never does *more* model work than the uninterrupted one.
    assert!(report.model_runs <= reference_report.model_runs);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_profiles_always_error_never_panic() {
    // Satellite: the journal replays through the same parser profiles
    // load through. Every proper prefix of a serialized profile must
    // return Err (trailing whitespace excepted) — and must never panic.
    let fx = fixture();
    let (profile, _) = generate(&fx, 2, None, None, None).unwrap();
    let text = profile.to_json().unwrap();
    let trimmed_len = text.trim_end().len();
    for cut in 0..text.len() {
        let prefix = &text[..cut];
        let parsed = Profile::from_json(prefix);
        if cut < trimmed_len {
            assert!(
                parsed.is_err(),
                "truncation at byte {cut} must error, got Ok"
            );
        }
    }
}

#[test]
fn bit_flipped_profiles_never_panic_or_loop() {
    // Random single-bit flips over the serialized profile: parsing must
    // terminate without panicking. A flip can legitimately yield a valid
    // document (e.g. a digit flip), in which case the result must at
    // least re-encode cleanly — corruption may change values it cannot
    // detect, but it must never wedge or crash the loader.
    let fx = fixture();
    let (profile, _) = generate(&fx, 2, None, None, None).unwrap();
    let text = profile.to_json().unwrap();
    let bytes = text.as_bytes();
    let mut rng = StdRng::seed_from_u64(0xb17f11);
    for _ in 0..2_000 {
        let at = (rng.next_u64() as usize) % bytes.len();
        let bit = (rng.next_u64() % 8) as u32;
        let mut mutated = bytes.to_vec();
        mutated[at] ^= 1 << bit;
        let Ok(s) = String::from_utf8(mutated) else {
            continue; // invalid UTF-8 can't even reach the parser
        };
        if let Ok(p) = Profile::from_json(&s) {
            let _ = p.to_json().expect("accepted profile must re-encode");
        }
    }
}
