//! The parallel-generation determinism contract (the reason `rt::pool`
//! exists in its current shape): for any worker count the generated
//! `Profile` — every `ProfilePoint`, bound, and estimate — must be
//! byte-identical to the sequential path, on both paper workloads, and
//! the cache accounting must be schedule-independent.

use smokescreen::core::{Aggregate, GeneratorConfig, ProfileGenerator, Workload};
use smokescreen::degrade::{CandidateGrid, RestrictionIndex};
use smokescreen::models::{Detector, SimMaskRcnn, SimYoloV4};
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::{ObjectClass, Resolution};

/// Builds the per-dataset fixture: the paper's model for the dataset and a
/// grid on that model's supported resolution multiples.
struct Fixture {
    corpus: smokescreen::video::VideoCorpus,
    detector: Box<dyn Detector>,
    grid: CandidateGrid,
}

fn fixture(dataset: DatasetPreset) -> Fixture {
    let corpus = dataset.generate(17).slice(0, 1_500);
    let (detector, resolutions): (Box<dyn Detector>, Vec<Resolution>) = match dataset {
        // Mask R-CNN accepts multiples of 64, YOLO multiples of 32.
        DatasetPreset::NightStreet => (
            Box::new(SimMaskRcnn::new(17)),
            vec![Resolution::square(256), Resolution::square(512)],
        ),
        DatasetPreset::Detrac => (
            Box::new(SimYoloV4::new(17)),
            vec![Resolution::square(320), Resolution::square(608)],
        ),
    };
    let grid = CandidateGrid::explicit(
        vec![0.02, 0.05, 0.1, 0.2],
        resolutions,
        vec![vec![], vec![ObjectClass::Person]],
    );
    Fixture {
        corpus,
        detector,
        grid,
    }
}

fn generate(fx: &Fixture, threads: usize) -> (smokescreen::core::Profile, usize, usize) {
    let workload = Workload {
        corpus: &fx.corpus,
        detector: fx.detector.as_ref(),
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
    };
    let restrictions = RestrictionIndex::from_ground_truth(&fx.corpus, &[ObjectClass::Person]);
    let gen = ProfileGenerator::new(
        &workload,
        &restrictions,
        GeneratorConfig {
            seed: 7,
            threads,
            ..GeneratorConfig::default()
        },
    );
    let (profile, report) = gen.generate(&fx.grid, None).unwrap();
    (profile, report.model_runs, report.cache_hits)
}

#[test]
fn profiles_are_byte_identical_across_thread_counts() {
    for dataset in [DatasetPreset::NightStreet, DatasetPreset::Detrac] {
        let fx = fixture(dataset);
        let (reference, seq_runs, seq_hits) = generate(&fx, 1);
        let reference_bytes = reference.to_json().unwrap();
        assert!(!reference.is_empty(), "{dataset:?}: profile must be non-trivial");

        for threads in [2usize, 8, 16] {
            let (profile, runs, hits) = generate(&fx, threads);
            // Structural equality over every ProfilePoint (set, y_approx,
            // err_b, corrected, n)...
            assert_eq!(
                profile, reference,
                "{dataset:?}: profile diverged at {threads} threads"
            );
            // ...and byte equality of the full serialized artifact.
            assert_eq!(
                profile.to_json().unwrap(),
                reference_bytes,
                "{dataset:?}: serialized profile not byte-identical at {threads} threads"
            );
            assert_eq!(
                runs + hits,
                seq_runs + seq_hits,
                "{dataset:?}: total model invocations must be invariant at {threads} threads"
            );
            assert_eq!(
                runs, seq_runs,
                "{dataset:?}: distinct model runs must be invariant at {threads} threads"
            );
        }
    }
}

#[test]
fn slice_ingested_order_aggregates_are_thread_count_independent() {
    // Ingestion is batched per fraction rung (`AggregateKernel::extend` →
    // kernel `push_slice`), and the OrderKernel rewrites each rung via
    // sort-then-merge. MAX and MEDIAN sweeps drive that merge path inside
    // parallel cells; profiles must stay byte-identical at any worker
    // count, exactly like the AVG path above.
    let fx = fixture(DatasetPreset::Detrac);
    let restrictions = RestrictionIndex::from_ground_truth(&fx.corpus, &[ObjectClass::Person]);
    for aggregate in [Aggregate::Max { r: 0.99 }, Aggregate::Quantile { r: 0.5 }] {
        let workload = Workload {
            corpus: &fx.corpus,
            detector: fx.detector.as_ref(),
            class: ObjectClass::Car,
            aggregate,
            delta: 0.05,
        };
        let run = |threads: usize| {
            ProfileGenerator::new(
                &workload,
                &restrictions,
                GeneratorConfig {
                    seed: 7,
                    threads,
                    ..GeneratorConfig::default()
                },
            )
            .generate(&fx.grid, None)
            .unwrap()
        };
        let (reference, _) = run(1);
        let reference_bytes = reference.to_json().unwrap();
        assert!(!reference.is_empty());
        for threads in [2usize, 8, 16] {
            let (profile, _) = run(threads);
            assert_eq!(
                profile.to_json().unwrap(),
                reference_bytes,
                "{} profile diverged at {threads} threads",
                aggregate.name()
            );
        }
    }
}

#[test]
fn early_stopping_decisions_are_thread_count_independent() {
    // Early stopping reads the previous candidate's bound, which is why
    // the in-cell sweep stays sequential; the skip counts must therefore
    // replay exactly under cell-level parallelism.
    let fx = fixture(DatasetPreset::Detrac);
    let workload = Workload {
        corpus: &fx.corpus,
        detector: fx.detector.as_ref(),
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
    };
    let restrictions = RestrictionIndex::from_ground_truth(&fx.corpus, &[ObjectClass::Person]);
    let dense = CandidateGrid::explicit(
        (1..=40).map(|i| i as f64 / 100.0).collect(),
        vec![Resolution::square(320), Resolution::square(608)],
        vec![vec![]],
    );
    let run = |threads: usize| {
        ProfileGenerator::new(
            &workload,
            &restrictions,
            GeneratorConfig {
                seed: 9,
                early_stop_improvement: Some(0.01),
                threads,
                ..GeneratorConfig::default()
            },
        )
        .generate(&dense, None)
        .unwrap()
    };
    let (p1, r1) = run(1);
    assert!(
        r1.skipped_by_early_stop > 0,
        "fixture must exercise early stopping"
    );
    for threads in [8usize, 16] {
        let (p, r) = run(threads);
        assert_eq!(r1.skipped_by_early_stop, r.skipped_by_early_stop);
        assert_eq!(r1.points, r.points);
        assert_eq!(p1, p, "early-stop profile diverged at {threads} threads");
    }
}

#[test]
fn warm_pool_replays_byte_identically_run_after_run() {
    // The persistent pool keeps its workers parked between jobs, so the
    // second `generate` here runs on threads that already executed the
    // first — any worker-identity leak into scheduling (thread-local
    // memo slots, chunk claiming, result ordering) would surface as a
    // cold-vs-warm divergence. Three consecutive 16-worker runs must be
    // byte-identical to each other and to the sequential path.
    let fx = fixture(DatasetPreset::Detrac);
    let (reference, seq_runs, _) = generate(&fx, 1);
    let reference_bytes = reference.to_json().unwrap();
    for attempt in 0..3 {
        let (profile, runs, _) = generate(&fx, 16);
        assert_eq!(
            profile.to_json().unwrap(),
            reference_bytes,
            "warm-pool run {attempt} diverged from the sequential profile"
        );
        assert_eq!(runs, seq_runs, "warm-pool run {attempt} changed model_runs");
    }
}
