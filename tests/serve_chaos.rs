//! Chaos soak: the serving daemon under *armed* seeded fault plans must
//! keep every acked write, answer the same logical schedule, and leave a
//! byte-identical store — regardless of worker count.
//!
//! This is the PR-9 soak story (`serve_soak.rs`) re-run with the safety
//! rails off. For each width in {1, 8, 16} the same seeded schedule runs
//! with a disk-fault plan (short writes, torn syncs, read bit-flips,
//! EIO) armed inside the store, a net-fault plan (drops, delays, partial
//! frames, resets) armed on every rid-stamped frame, a small read cache,
//! and the background scrubber on. Four `FaultClient`s drive a mixed
//! schedule over disjoint key spaces, the daemon is killed mid-life, the
//! store is cold-audited for lost acked writes, a second generation
//! serves another wave, the quarantine backlog is drained over the wire
//! (`scrub` until `unrepaired == 0`), and a graceful shutdown compacts.
//!
//! Three artifacts must then be identical across widths:
//!
//! 1. every per-client transcript of **final op outcomes** (retries,
//!    dedups, and hedges are the mechanism, not the answer — and the
//!    timing-dependent `stale`/`degraded` flags are deliberately
//!    excluded, since quarantine windows depend on scrubber interleaving),
//! 2. the final compacted data segment,
//! 3. the final index segment.
//!
//! Determinism under chaos holds for the same reason it held clean:
//! request ids are pure functions of the schedule, so every fault
//! decision replays; idempotent `expected_seq` retries make re-sent puts
//! collapse to one state transition; and compaction rewrites the final
//! bytes as a pure function of the surviving map.

use std::collections::BTreeMap;

use smokescreen_bench::serve_client::{
    client_camera, sample_profile, FaultClient, RetryPolicy, RetryStats,
};
use smokescreen_core::Profile;
use smokescreen_rt::fault::{DiskFaultPlan, NetFaultPlan};
use smokescreen_serve::{
    ProfileStore, Request, Response, ServeAddr, Server, ServerConfig, StoreKey,
};

const CLIENTS: usize = 4;
const PHASE1_REQUESTS: usize = 80;
const PHASE2_REQUESTS: usize = 40;
const IDENTITY: &str = "smokescreen-serve";
const DISK_SEED: u64 = 0xD15C;
const DISK_RATE: f64 = 0.12;
const NET_SEED: u64 = 0x4E7;
const NET_RATE: f64 = 0.15;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 16
}

fn chaos_policy() -> RetryPolicy {
    RetryPolicy {
        // Generous budget: under these rates an op can eat a dropped
        // request, a reset, AND a store-side write fault back to back.
        max_attempts: 12,
        read_deadline_ms: 100,
        hedge_after_ms: 30,
        ..RetryPolicy::default()
    }
}

/// Everything a client saw, plus the acked writes it is owed.
#[derive(Default)]
struct ClientRun {
    transcript: Vec<String>,
    acked: BTreeMap<StoreKey, (u64, Profile)>,
    stats: RetryStats,
}

/// Drives one client's seeded schedule through the fault-tolerant
/// client. Same schedule shape as the clean soak: put-heavy mix over six
/// grids under the client's own camera. Every op must reach a final
/// outcome — the retry budget losing would fail the test.
fn run_client(
    addr: &ServeAddr,
    client: usize,
    phase: u64,
    requests: usize,
    acked: BTreeMap<StoreKey, (u64, Profile)>,
) -> ClientRun {
    let mut run = ClientRun {
        transcript: Vec::new(),
        acked,
        stats: RetryStats::default(),
    };
    let camera = client_camera(client);
    let mut rng = 0x5eed_0000 + client as u64 * 131 + phase * 7919;
    let mut fc = FaultClient::new(addr.clone(), camera, chaos_policy());
    for step in 0..requests {
        let grid = 1 + lcg(&mut rng) % 6;
        let key = StoreKey::new(camera, grid);
        let line = match lcg(&mut rng) % 10 {
            0..=5 => {
                let profile = sample_profile(grid + phase * 100, 3 + (step % 5));
                let seq = fc.put(key, &profile).expect("put lands within the budget");
                let expected = run.acked.get(&key).map_or(0, |(s, _)| *s) + 1;
                assert_eq!(seq, expected, "client {client} key {key:?}: seqs stay monotone");
                run.acked.insert(key, (seq, profile));
                format!("{step} put {key:?} seq {seq}")
            }
            6 | 7 => match fc.get(key).expect("get lands within the budget") {
                Some(reply) => {
                    let (want_seq, want_profile) =
                        run.acked.get(&key).expect("profile reply implies prior put");
                    assert_eq!(reply.seq, *want_seq);
                    assert_eq!(
                        &reply.profile, want_profile,
                        "get returns the acked bytes even through bit-flips"
                    );
                    format!(
                        "{step} get {key:?} seq {} points {}",
                        reply.seq,
                        reply.profile.points.len()
                    )
                }
                None => {
                    assert!(!run.acked.contains_key(&key));
                    format!("{step} get {key:?} not_found")
                }
            },
            _ => match fc
                .query(key, 0.2, Some(0.8), None, None)
                .expect("query lands within the budget")
            {
                Some(matches) => {
                    let cheapest = matches
                        .first()
                        .map_or("-".to_string(), |p| format!("{:.3}", p.set.sample_fraction));
                    format!("{step} query {key:?} matches {} cheapest {cheapest}", matches.len())
                }
                None => {
                    assert!(!run.acked.contains_key(&key));
                    format!("{step} query {key:?} not_found")
                }
            },
        };
        run.transcript.push(line);
    }
    run.stats = fc.stats;
    run
}

fn run_phase(
    addr: &ServeAddr,
    phase: u64,
    requests: usize,
    shadows: Vec<BTreeMap<StoreKey, (u64, Profile)>>,
) -> Vec<ClientRun> {
    let handles: Vec<_> = shadows
        .into_iter()
        .enumerate()
        .map(|(client, acked)| {
            let addr = addr.clone();
            std::thread::spawn(move || run_client(&addr, client, phase, requests, acked))
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect()
}

fn chaos_config(addr: ServeAddr, dir: &std::path::Path, threads: usize) -> ServerConfig {
    ServerConfig::new(addr, dir)
        .with_threads(threads)
        .with_cache_cap(4)
        .with_scrub_batch(16)
        .with_disk_faults(Some(DiskFaultPlan::new(DISK_SEED, DISK_RATE)))
        .with_net_faults(Some(NetFaultPlan::new(NET_SEED, NET_RATE)))
}

/// Aggregate chaos counters across both generations at one width.
#[derive(Default)]
struct ChaosTotals {
    net_faults: u64,
    disk_faults: u64,
    deduped_puts: u64,
    client_retries: u64,
}

/// One full daemon life under chaos at a given width.
fn chaos_at_width(threads: usize) -> (Vec<Vec<String>>, Vec<u8>, Vec<u8>, ChaosTotals) {
    let tag = format!("smk-chaos-w{threads}-{}", std::process::id());
    let dir = std::env::temp_dir().join(&tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = std::env::temp_dir().join(format!("{tag}.sock"));
    let _ = std::fs::remove_file(&sock);
    let addr = ServeAddr::Unix(sock);
    let mut totals = ChaosTotals::default();

    // Generation 1: seeded load under armed fault plans, then a kill.
    let server = Server::new(chaos_config(addr.clone(), &dir, threads))
        .spawn()
        .expect("gen-1 daemon");
    let phase1 = run_phase(
        server.addr(),
        1,
        PHASE1_REQUESTS,
        vec![BTreeMap::new(); CLIENTS],
    );
    let report = server.kill().expect("gen-1 kill");
    assert!(!report.graceful);
    totals.net_faults += report.stats.net_faults;
    totals.disk_faults += report.stats.disk_write_faults + report.stats.disk_read_faults;
    totals.deduped_puts += report.stats.deduped_puts;
    for run in &phase1 {
        totals.client_retries += run.stats.retries;
    }

    // Crash audit under chaos: reopen the store cold (no fault plan —
    // the audit reads the real bytes) and verify every acked write
    // survived the kill. Injected faults only ever hit unacked attempts
    // (EIO/short-write fail before the ack; read bit-flips corrupt read
    // buffers, never the disk), so the ack remains the durability line.
    {
        let (mut store, _replay) = ProfileStore::open(&dir, IDENTITY).expect("post-kill reopen");
        for run in &phase1 {
            for (key, (seq, profile)) in &run.acked {
                let (got_seq, got_profile) = store
                    .get(*key)
                    .expect("audit get")
                    .unwrap_or_else(|| panic!("acked write {key:?} lost in crash"));
                assert!(
                    got_seq >= *seq,
                    "{key:?}: store at seq {got_seq}, client acked {seq}"
                );
                if got_seq == *seq {
                    assert_eq!(&*got_profile, profile, "acked bytes survive verbatim");
                }
            }
        }
    }

    // Generation 2: same chaos plans, a second wave, then a wire-driven
    // scrub drain and a graceful stop.
    let server = Server::new(chaos_config(addr, &dir, threads))
        .spawn()
        .expect("gen-2 daemon");
    let phase2 = run_phase(
        server.addr(),
        2,
        PHASE2_REQUESTS,
        phase1.iter().map(|run| run.acked.clone()).collect(),
    );
    for run in &phase2 {
        totals.client_retries += run.stats.retries;
    }

    // Drain the quarantine backlog over the wire before stopping: scrub
    // frames carry no rid, so control traffic is never faulted.
    let mut conn = server.addr().connect().expect("scrub connection");
    let mut drained = false;
    for _ in 0..32 {
        match conn
            .request(&Request::Scrub { budget: 64 })
            .expect("scrub answered")
        {
            Response::Scrub { unrepaired, wrapped, .. } => {
                if wrapped && unrepaired == 0 {
                    drained = true;
                    break;
                }
            }
            other => panic!("scrub got {other:?}"),
        }
    }
    assert!(drained, "quarantine backlog failed to drain in 32 scrub steps");

    let report = server.shutdown().expect("gen-2 shutdown");
    assert!(report.graceful);
    // `stats.quarantined_records` is cumulative (healed transients stay
    // counted), so the loss gate is structural instead: the drained
    // scrub above proved zero pending quarantine, and the shutdown
    // compaction must rewrite exactly the union of acked keys — a
    // dropped record would show up as a shortfall here.
    let acked_keys: usize = phase2.iter().map(|run| run.acked.len()).sum();
    let compaction = report.compaction.as_ref().expect("graceful shutdown compacts");
    assert_eq!(
        compaction.live_records, acked_keys,
        "compaction must carry every acked key forward"
    );
    totals.net_faults += report.stats.net_faults;
    totals.disk_faults += report.stats.disk_write_faults + report.stats.disk_read_faults;
    totals.deduped_puts += report.stats.deduped_puts;

    let data = std::fs::read(dir.join("profiles.data")).unwrap();
    let index = std::fs::read(dir.join("profiles.idx")).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    let transcripts = phase1
        .iter()
        .chain(phase2.iter())
        .map(|run| run.transcript.clone())
        .collect();
    (transcripts, data, index, totals)
}

#[test]
fn chaos_soak_is_deterministic_and_loses_nothing() {
    let (transcripts_1, data_1, index_1, totals_1) = chaos_at_width(1);
    assert!(!data_1.is_empty() && !index_1.is_empty());
    assert_eq!(transcripts_1.len(), CLIENTS * 2);

    // The chaos was real, not vacuously skipped: the seeded plans fired
    // on both the wire and the disk, and the retry layer did work.
    assert!(totals_1.net_faults > 0, "net plan armed but never fired");
    assert!(totals_1.disk_faults > 0, "disk plan armed but never fired");
    assert!(totals_1.client_retries > 0, "chaos without retries is luck");

    for width in [8usize, 16] {
        let (transcripts, data, index, totals) = chaos_at_width(width);
        assert_eq!(
            transcripts, transcripts_1,
            "final-outcome transcripts diverged at width {width}"
        );
        assert_eq!(
            data, data_1,
            "final data segment not byte-identical at width {width}"
        );
        assert_eq!(
            index, index_1,
            "final index segment not byte-identical at width {width}"
        );
        assert!(totals.net_faults > 0 && totals.disk_faults > 0);
    }
}
