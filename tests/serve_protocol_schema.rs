//! Golden test pinning the serve wire-protocol schema, plus abuse tests
//! proving a live daemon answers hostile frames with *typed* errors.
//!
//! Every request and response shape the daemon speaks is enumerated by
//! `protocol::representative_frames()`; each frame is reduced to its
//! structural schema (`trajectory::schema_of`: field names and types, no
//! values) and the whole map compared against
//! `tests/golden/serve_protocol_schema.json`. A field added, removed,
//! renamed, or retyped anywhere on the wire shows up as a diff here. To
//! bless an intentional protocol change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test serve_protocol_schema
//! ```
//!
//! The abuse tests then bind a real daemon and feed it garbage JSON,
//! oversized length prefixes, and depth-bombed documents: the contract is
//! a typed `error` response — never a hang, never a panic, never a torn
//! connection where resync is possible.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

use smokescreen_bench::trajectory::schema_of;
use smokescreen_rt::json::Json;
use smokescreen_serve::protocol::{read_frame, representative_frames};
use smokescreen_serve::{
    Connection, ErrorCode, Request, Response, RunningServer, ServeAddr, Server, ServerConfig,
    StoreKey, MAX_FRAME_LEN,
};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/serve_protocol_schema.json")
}

#[test]
fn serve_protocol_schema_matches_golden() {
    let mut shapes = BTreeMap::new();
    for (name, frame) in representative_frames() {
        shapes.insert(name.to_string(), schema_of(&frame));
    }
    let schema = Json::Obj(shapes);
    let encoded = schema.encode_pretty();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &encoded).unwrap();
        println!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun UPDATE_GOLDEN=1 cargo test --test serve_protocol_schema to create it",
            path.display()
        )
    });
    assert_eq!(
        Json::parse(&golden).expect("golden parses"),
        schema,
        "serve wire-protocol schema drifted from {} — if intentional, regen with UPDATE_GOLDEN=1",
        path.display()
    );
    assert_eq!(golden, encoded, "golden file is not the canonical encoding");
}

#[test]
fn representative_frames_have_stable_names() {
    // The golden keys double as protocol documentation; duplicates or
    // renames would silently shadow a shape in the map above.
    let names: Vec<&str> = representative_frames().iter().map(|(n, _)| *n).collect();
    let mut unique = names.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), names.len(), "duplicate frame name");
    assert!(names.iter().any(|n| n.starts_with("request.")));
    assert!(names.iter().any(|n| n.starts_with("response.")));
}

// ---------------------------------------------------------------------------
// Abuse tests against a live daemon
// ---------------------------------------------------------------------------

/// Spawns a daemon on a fresh store + socket for one abuse scenario.
fn daemon(tag: &str) -> (RunningServer, PathBuf) {
    let dir = std::env::temp_dir().join(format!("smk-abuse-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = std::env::temp_dir().join(format!("smk-abuse-{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let server = Server::new(ServerConfig::new(ServeAddr::Unix(sock), &dir).with_threads(2))
        .spawn()
        .unwrap();
    (server, dir)
}

/// Runs `f` on its own thread and panics if it exceeds `secs` — the
/// "never hang" half of the abuse contract, enforced mechanically.
fn with_deadline<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    let out = rx
        .recv_timeout(Duration::from_secs(secs))
        .expect("abuse scenario hung: daemon never answered");
    handle.join().expect("abuse scenario panicked");
    out
}

/// Reads one response frame off a raw connection.
fn read_response(conn: &mut Connection) -> Response {
    let frame = read_frame(conn)
        .expect("framing intact")
        .expect("connection open");
    Response::from_json(&frame).expect("well-formed response")
}

fn expect_error(response: Response, code: ErrorCode) {
    match response {
        Response::Error { code: got, .. } => assert_eq!(got, code),
        other => panic!("expected {code:?} error, got {other:?}"),
    }
}

#[test]
fn malformed_json_gets_typed_error_and_connection_survives() {
    let (server, dir) = daemon("malformed");
    let code = with_deadline(30, move || {
        let mut conn = server.connect().unwrap();
        // A length-prefixed frame whose body is not JSON.
        let body = b"{not json at all";
        let mut raw = (body.len() as u32).to_le_bytes().to_vec();
        raw.extend_from_slice(body);
        conn.write_all(&raw).unwrap();
        expect_error(read_response(&mut conn), ErrorCode::Malformed);
        // Framing was intact, so the connection resyncs: a valid request
        // on the same socket still works.
        match conn.request(&Request::Stats).unwrap() {
            Response::Stats(stats) => assert!(stats.protocol_errors >= 1),
            other => panic!("expected stats after resync, got {other:?}"),
        }
        let report = server.shutdown().unwrap();
        assert!(report.graceful);
        report.stats.protocol_errors
    });
    assert!(code >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_frame_gets_typed_error_then_close() {
    let (server, dir) = daemon("oversized");
    with_deadline(30, move || {
        let mut conn = server.connect().unwrap();
        // Claim a frame bigger than the hard cap without sending a body;
        // the daemon must reject on the prefix alone, not try to read it.
        let raw = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
        conn.write_all(&raw).unwrap();
        expect_error(read_response(&mut conn), ErrorCode::Oversized);
        // After an oversized claim the stream cannot be resynced: the
        // daemon closes it, which reads back as a clean EOF.
        match read_frame(&mut conn) {
            Ok(None) => {}
            other => panic!("expected EOF after oversized frame, got {other:?}"),
        }
        let report = server.shutdown().unwrap();
        assert!(report.graceful);
        assert!(report.stats.protocol_errors >= 1);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn depth_bombed_document_gets_typed_error_not_stack_overflow() {
    let (server, dir) = daemon("depthbomb");
    with_deadline(30, move || {
        let mut conn = server.connect().unwrap();
        // 4096 nested arrays — far past MAX_PARSE_DEPTH. The parser must
        // bail with a typed error instead of recursing off the stack.
        let depth = 4096;
        let mut body = Vec::with_capacity(depth * 2);
        body.extend(std::iter::repeat(b'[').take(depth));
        body.extend(std::iter::repeat(b']').take(depth));
        let mut raw = (body.len() as u32).to_le_bytes().to_vec();
        raw.extend_from_slice(&body);
        conn.write_all(&raw).unwrap();
        expect_error(read_response(&mut conn), ErrorCode::Malformed);
        // Valid JSON that is not a request object is a BadRequest, and
        // the connection keeps serving afterwards.
        let body = br#"{"op":"launch_missiles"}"#;
        let mut raw = (body.len() as u32).to_le_bytes().to_vec();
        raw.extend_from_slice(body);
        conn.write_all(&raw).unwrap();
        expect_error(read_response(&mut conn), ErrorCode::BadRequest);
        let report = server.shutdown().unwrap();
        assert!(report.graceful);
        assert!(report.stats.protocol_errors >= 1);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_connection_mid_frame_never_wedges_the_daemon() {
    let (server, dir) = daemon("truncated");
    with_deadline(30, move || {
        {
            let mut conn = server.connect().unwrap();
            // Claim 100 bytes, send 3, slam the connection shut.
            let mut raw = 100u32.to_le_bytes().to_vec();
            raw.extend_from_slice(b"abc");
            conn.write_all(&raw).unwrap();
        } // dropped: half a frame on the wire
        // The daemon must shrug that off and keep serving new clients.
        let mut conn = server.connect().unwrap();
        let key = StoreKey::new(7, 7);
        match conn.request(&Request::GetProfile { key }).unwrap() {
            Response::Error {
                code: ErrorCode::NotFound,
                ..
            } => {}
            other => panic!("expected not_found on empty store, got {other:?}"),
        }
        let report = server.shutdown().unwrap();
        assert!(report.graceful);
    });
    let _ = std::fs::remove_dir_all(&dir);
}
