//! Property-based tests over the public API: invariants that must hold
//! for *arbitrary* inputs, not just the curated fixtures.

use smokescreen_rt::proptest::prelude::*;

use smokescreen::core::{estimate_from_outputs, Aggregate, AggregateKernel, Estimate};
use smokescreen::stats::bounds::{hoeffding, hoeffding_serfling};
use smokescreen::stats::sample::{fraction_to_size, PrefixSampler};
use smokescreen::stats::{avg_estimate, quantile_estimate, Extreme};
use smokescreen::video::{BBox, ObjectClass, Resolution};

fn outputs_strategy() -> impl Strategy<Value = Vec<f64>> {
    // Non-negative, bounded, integer-ish values like detector counts.
    proptest::collection::vec((0u32..40).prop_map(f64::from), 2..400)
}

proptest! {
    #[test]
    fn avg_estimate_invariants(sample in outputs_strategy(), extra in 0usize..10_000) {
        let population = sample.len() + extra;
        let est = avg_estimate(&sample, population, 0.05).unwrap();
        // The bound is a valid relative error: non-negative, ≤ 1 by
        // construction of (UB−LB)/(UB+LB) with LB ≥ 0.
        prop_assert!(est.err_b >= 0.0 && est.err_b <= 1.0 + 1e-12);
        // The estimate lies inside the implied magnitude interval.
        prop_assert!(est.y_approx.abs() <= est.ub + 1e-9);
        prop_assert!(est.y_approx.abs() >= est.lb - 1e-9);
        // Theorem 3.1 identities.
        if est.lb > 0.0 {
            prop_assert!((est.y_approx.abs() - (1.0 + est.err_b) * est.lb).abs() < 1e-6);
        } else {
            prop_assert_eq!(est.err_b, 1.0);
            prop_assert_eq!(est.y_approx, 0.0);
        }
    }

    #[test]
    fn hoeffding_serfling_never_looser_than_hoeffding(
        sample in outputs_strategy(),
        extra in 0usize..5_000,
    ) {
        let population = sample.len() + extra;
        let hs = hoeffding_serfling::interval(&sample, population, 0.05).unwrap();
        let h = hoeffding::interval(&sample, population, 0.05).unwrap();
        prop_assert!(hs.half_width <= h.half_width + 1e-12);
    }

    #[test]
    fn quantile_estimate_is_an_order_statistic(
        sample in outputs_strategy(),
        r in 0.01f64..0.99,
    ) {
        let population = sample.len() * 3;
        let q = quantile_estimate(&sample, population, r, 0.05, Extreme::Max).unwrap();
        prop_assert!(sample.contains(&q.y_approx));
        prop_assert!(q.err_b >= 0.0);
        prop_assert!(q.f_hat > 0.0 && q.f_hat <= 1.0);
        // Rank of the estimate within the sample is consistent with r.
        let below = sample.iter().filter(|&&v| v <= q.y_approx).count() as f64
            / sample.len() as f64;
        prop_assert!(below >= r - 1e-9);
    }

    #[test]
    fn prefix_sampler_prefixes_nest(population in 2usize..2_000, seed in any::<u64>()) {
        let sampler = PrefixSampler::new(population, seed);
        let small = sampler.prefix(population / 2).to_vec();
        let large = sampler.prefix(population).to_vec();
        prop_assert_eq!(&large[..small.len()], &small[..]);
        // The full prefix is a permutation.
        let mut sorted = large.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..population).collect::<Vec<_>>());
    }

    #[test]
    fn fraction_to_size_bounds(population in 1usize..1_000_000, f in 1e-6f64..1.0) {
        let n = fraction_to_size(population, f).unwrap();
        prop_assert!(n >= 1 && n <= population);
    }

    #[test]
    fn sum_and_avg_estimates_share_relative_bounds(sample in outputs_strategy()) {
        let population = sample.len() * 7;
        let avg = estimate_from_outputs(Aggregate::Avg, &sample, population, 0.05).unwrap();
        let sum = estimate_from_outputs(Aggregate::Sum, &sample, population, 0.05).unwrap();
        prop_assert!((avg.err_b() - sum.err_b()).abs() < 1e-12);
        match (avg, sum) {
            (Estimate::Mean(a), Estimate::Mean(s)) => {
                prop_assert!((s.y_approx - a.y_approx * population as f64).abs() < 1e-6);
            }
            _ => prop_assert!(false, "mean aggregates must return mean estimates"),
        }
    }

    #[test]
    fn aggregate_kernels_bit_identical_across_fraction_ladders(
        population_values in outputs_strategy(),
        seed in any::<u64>(),
        fractions in proptest::collection::vec(0.001f64..1.0, 1..10),
    ) {
        // The §3.3.2 sweep contract: for an arbitrary population, an
        // arbitrary sampling permutation, and an arbitrary ascending
        // fraction ladder, a kernel that ingests only each step's Δn new
        // outputs produces the same (answer, err_b) — bit for bit — as
        // the batch estimator re-run on the whole prefix, for all seven
        // aggregates.
        let n_pop = population_values.len();
        let sampler = PrefixSampler::new(n_pop, seed);
        let sample_order: Vec<f64> = sampler
            .prefix(n_pop)
            .iter()
            .map(|&i| population_values[i])
            .collect();
        let mut ladder: Vec<usize> = fractions
            .iter()
            .map(|&f| fraction_to_size(n_pop, f).unwrap())
            .collect();
        ladder.sort_unstable();
        for aggregate in [
            Aggregate::Avg,
            Aggregate::Sum,
            Aggregate::Count { at_least: 1.0 },
            Aggregate::Max { r: 0.99 },
            Aggregate::Min { r: 0.01 },
            Aggregate::Quantile { r: 0.5 },
            Aggregate::Var,
        ] {
            let mut kernel = AggregateKernel::new(aggregate);
            for &n_f in &ladder {
                kernel.extend(&sample_order[kernel.n()..n_f]);
                prop_assert_eq!(
                    kernel.estimate(n_pop, 0.05).unwrap(),
                    estimate_from_outputs(aggregate, &sample_order[..n_f], n_pop, 0.05)
                        .unwrap(),
                    "{} at prefix {}", aggregate.name(), n_f
                );
            }
        }
    }

    #[test]
    fn count_aggregate_bounded_by_population(sample in outputs_strategy()) {
        let population = sample.len() * 2;
        let est = estimate_from_outputs(
            Aggregate::Count { at_least: 1.0 },
            &sample,
            population,
            0.05,
        )
        .unwrap();
        prop_assert!(est.y_approx() >= 0.0);
        prop_assert!(est.y_approx() <= population as f64 + 1e-9);
    }

    #[test]
    fn bbox_stays_in_unit_square(
        x in -1.0f32..2.0, y in -1.0f32..2.0, w in -1.0f32..2.0, h in -1.0f32..2.0,
    ) {
        let b = BBox::new(x, y, w, h);
        prop_assert!(b.x >= 0.0 && b.y >= 0.0);
        prop_assert!(b.x + b.w <= 1.0 + f32::EPSILON);
        prop_assert!(b.y + b.h <= 1.0 + f32::EPSILON);
        prop_assert!(b.area() >= 0.0);
    }

    #[test]
    fn resolution_parse_round_trips(w in 1u32..5_000, h in 1u32..5_000) {
        let r = Resolution::new(w, h);
        let parsed: Resolution = r.to_string().parse().unwrap();
        prop_assert_eq!(r, parsed);
    }

    #[test]
    fn class_names_round_trip(idx in 0usize..6) {
        let class = ObjectClass::ALL[idx];
        prop_assert_eq!(class.name().parse::<ObjectClass>().unwrap(), class);
    }
}
