//! Integration: profile artifacts and the similar-video transfer workflow.

use smokescreen::core::similarity::profile_difference;
use smokescreen::core::{Aggregate, GeneratorConfig, Preferences, Smokescreen};
use smokescreen::degrade::CandidateGrid;
use smokescreen::models::SimYoloV4;
use smokescreen::video::synth::detrac_sequence_pair;
use smokescreen::video::{ObjectClass, Resolution};

fn grid() -> CandidateGrid {
    CandidateGrid::explicit(
        vec![0.05, 0.1, 0.2, 0.4],
        vec![Resolution::square(320), Resolution::square(608)],
        vec![vec![]],
    )
}

#[test]
fn similar_video_profile_transfers_to_the_sensitive_one() {
    // The §3.3.1 fallback: when video A is too sensitive to touch at all,
    // profile the visually similar video B and transfer the curve.
    let (video_a, video_b) = detrac_sequence_pair(5);
    let yolo = SimYoloV4::new(1);

    let config = GeneratorConfig {
        early_stop_improvement: None,
        ..GeneratorConfig::default()
    };
    let system_a = Smokescreen::new(&video_a, &yolo, ObjectClass::Car, Aggregate::Avg, 0.05)
        .with_config(config.clone());
    let system_b = Smokescreen::new(&video_b, &yolo, ObjectClass::Car, Aggregate::Avg, 0.05)
        .with_config(config);

    let (profile_a, _) = system_a.generate_profile(&grid(), None).unwrap();
    let (profile_b, _) = system_b.generate_profile(&grid(), None).unwrap();

    let diff = profile_difference(&profile_a, &profile_b);
    assert_eq!(diff.len(), grid().len(), "every candidate must align");
    assert!(
        diff.mean_abs_difference() < 0.15,
        "similar videos must yield similar profiles: mean diff {}",
        diff.mean_abs_difference()
    );

    // Transferring B's recommendation to A keeps A within a reasonable
    // factor of its own profiled bound.
    let prefs = Preferences::accuracy(0.5);
    let chosen_b = system_b.choose(&profile_b, &prefs).unwrap();
    let a_point = profile_a
        .points
        .iter()
        .find(|p| p.set == chosen_b)
        .expect("same grid");
    assert!(
        a_point.err_b <= prefs.max_error + diff.max_abs_difference(),
        "transferred choice must stay near-feasible on A: {} vs {}",
        a_point.err_b,
        prefs.max_error
    );
}

#[test]
fn profiles_support_the_full_slice_api() {
    let (video_a, _) = detrac_sequence_pair(6);
    let yolo = SimYoloV4::new(2);
    let system = Smokescreen::new(&video_a, &yolo, ObjectClass::Car, Aggregate::Avg, 0.05)
        .with_config(GeneratorConfig {
            early_stop_improvement: None,
            ..GeneratorConfig::default()
        });
    let (profile, _) = system.generate_profile(&grid(), None).unwrap();

    // Fraction curves exist per resolution; bounds decrease with f.
    for res in [Some(Resolution::square(320)), None] {
        let curve = profile.curve_over_fraction(res, &[]);
        assert_eq!(curve.len(), 4, "res {res:?}");
        assert!(
            curve.first().unwrap().1 >= curve.last().unwrap().1,
            "bounds should tighten with fraction: {curve:?}"
        );
    }
    // Resolution curve at a fixed fraction has both entries (608 is the
    // native resolution and is normalized to None by the generator, so
    // only 320 appears as an explicit resolution).
    let res_curve = profile.curve_over_resolution(0.2, &[]);
    assert_eq!(res_curve.len(), 1);
    assert_eq!(res_curve[0].0, 320);

    // Interpolation between grid fractions is within the endpoints.
    let lo = profile.interpolate_fraction(0.05, None, &[]).unwrap();
    let hi = profile.interpolate_fraction(0.4, None, &[]).unwrap();
    let mid = profile.interpolate_fraction(0.3, None, &[]).unwrap();
    assert!(mid <= lo.max(hi) && mid >= lo.min(hi));
}
