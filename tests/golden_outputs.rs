//! Golden-output regression tests for the repro harness.
//!
//! Runs `fig4` and `fig6` at the pinned quick configuration (seed 42) and
//! compares every CSV field against snapshots under `tests/golden/`. Any
//! drift in the estimators, the profile generator, or the parallel fan-out
//! shows up here as a field-level diff. To bless an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_outputs
//! ```
//!
//! and commit the regenerated files.

use std::fs;
use std::path::PathBuf;

use smokescreen_bench::figures::by_id;
use smokescreen_bench::table::Table;
use smokescreen_bench::RunConfig;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn pinned_config() -> RunConfig {
    RunConfig {
        seed: 42,
        ..RunConfig::quick()
    }
}

/// Field-by-field comparison so a failure names the exact row/column that
/// drifted instead of dumping two whole CSVs.
fn assert_csv_matches(golden: &str, fresh: &str, name: &str) {
    let golden_lines: Vec<&str> = golden.lines().collect();
    let fresh_lines: Vec<&str> = fresh.lines().collect();
    assert_eq!(
        golden_lines.len(),
        fresh_lines.len(),
        "{name}: row count changed ({} golden vs {} fresh)",
        golden_lines.len(),
        fresh_lines.len()
    );
    let headers: Vec<&str> = golden_lines.first().map(|h| h.split(',').collect()).unwrap_or_default();
    for (row, (g, f)) in golden_lines.iter().zip(&fresh_lines).enumerate() {
        let g_fields: Vec<&str> = g.split(',').collect();
        let f_fields: Vec<&str> = f.split(',').collect();
        assert_eq!(
            g_fields.len(),
            f_fields.len(),
            "{name} row {row}: column count changed"
        );
        for (col, (gv, fv)) in g_fields.iter().zip(&f_fields).enumerate() {
            assert_eq!(
                gv, fv,
                "{name} row {row}, column {:?}: golden {gv:?} != fresh {fv:?}",
                headers.get(col).copied().unwrap_or("?")
            );
        }
    }
}

fn check_experiment(id: &str) {
    let experiment = by_id(id).expect("experiment registered");
    let tables: Vec<Table> = experiment.run(&pinned_config());
    assert!(!tables.is_empty(), "{id}: experiment produced no tables");

    let dir = golden_dir();
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    if update {
        fs::create_dir_all(&dir).unwrap();
    }
    for (i, table) in tables.iter().enumerate() {
        let name = format!("{id}_{i}.csv");
        let path = dir.join(&name);
        let fresh = table.to_csv();
        if update {
            fs::write(&path, &fresh).unwrap();
            continue;
        }
        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden snapshot ({e}); \
                 run `UPDATE_GOLDEN=1 cargo test --test golden_outputs` to create it"
            )
        });
        assert_csv_matches(&golden, &fresh, &name);
    }

    // The snapshot set must not contain stale panels from a previous shape
    // of the experiment.
    let stale: Vec<String> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| {
            n.strip_prefix(&format!("{id}_"))
                .and_then(|rest| rest.strip_suffix(".csv"))
                .and_then(|idx| idx.parse::<usize>().ok())
                .is_some_and(|idx| idx >= tables.len())
        })
        .collect();
    assert!(stale.is_empty(), "{id}: stale golden files {stale:?}");
}

#[test]
fn fig4_matches_golden_snapshots() {
    check_experiment("fig4");
}

#[test]
fn fig6_matches_golden_snapshots() {
    check_experiment("fig6");
}
