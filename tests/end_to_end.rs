//! End-to-end workflow test spanning every crate: corpus synthesis →
//! detector → interventions → profile generation with correction →
//! administration → tradeoff choice → degraded query execution → camera
//! fleet accounting.

use smokescreen::camera::{Camera, Fleet, Link};
use smokescreen::core::{
    true_relative_error, Aggregate, CorrectionConfig, Preferences, Smokescreen,
};
use smokescreen::degrade::CandidateGrid;
use smokescreen::models::SimYoloV4;
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::{ObjectClass, Resolution};

#[test]
fn the_paper_workflow_runs_end_to_end() {
    let corpus = DatasetPreset::Detrac.generate(1).slice(0, 4_000);
    let yolo = SimYoloV4::new(1);
    let system = Smokescreen::new(&corpus, &yolo, ObjectClass::Car, Aggregate::Avg, 0.05);

    // Profile generation with a repaired grid.
    let grid = CandidateGrid::explicit(
        vec![0.02, 0.05, 0.1, 0.3],
        vec![Resolution::square(256), Resolution::square(608)],
        vec![vec![], vec![ObjectClass::Face]],
    );
    let correction = system
        .build_correction_set(&CorrectionConfig::default(), 5)
        .expect("correction set builds");
    let (profile, report) = system
        .generate_profile(&grid, Some(&correction))
        .expect("profile generates");
    assert_eq!(profile.len(), 16);
    assert!(report.model_runs > 0);
    assert!(report.cache_hits > 0, "nested fractions must reuse outputs");

    // Administration: initial view plus a refined slice.
    let mut session = system.admin_session(profile.clone());
    let view = session.initial_view();
    assert!(!view.over_fraction.is_empty());
    assert!(!view.over_resolution.is_empty());

    // Tradeoff choice under a realistic preference.
    let mut prefs = Preferences::accuracy(0.5);
    prefs.required_removals = vec![ObjectClass::Face];
    let chosen = system.choose(&profile, &prefs).expect("feasible tradeoff");
    assert!(chosen.restricted.contains(&ObjectClass::Face));

    // The degraded query actually meets the profiled promise against the
    // oracle truth (correction-repaired bounds hold under bias).
    let estimate = system.estimate(&chosen, 77).expect("query runs");
    let population = system.workload().population_outputs();
    let true_err = true_relative_error(Aggregate::Avg, &estimate, &population);
    let point = profile
        .points
        .iter()
        .find(|p| p.set == chosen)
        .expect("chosen candidate was profiled");
    assert!(
        true_err <= point.err_b + 0.05,
        "profiled bound {} should cover the realized error {true_err}",
        point.err_b
    );

    // Policy accounting: the chosen degradation reduces fleet costs.
    let fleet = Fleet {
        cameras: vec![Camera::new("cam-0", corpus.clone(), Link::SENSOR_NET)],
    };
    let before = fleet
        .transmit_all(&smokescreen::degrade::InterventionSet::none(), 3)
        .unwrap();
    let after = fleet.transmit_all(&chosen, 3).unwrap();
    assert!(after.total_bytes() < before.total_bytes());
    assert!(after.total_exposure() <= before.total_exposure());
}

#[test]
fn profiles_serialize_and_survive_round_trips() {
    let corpus = DatasetPreset::NightStreet.generate(2).slice(0, 2_000);
    let yolo = SimYoloV4::new(2);
    let system = Smokescreen::new(&corpus, &yolo, ObjectClass::Car, Aggregate::Avg, 0.05);
    let grid = CandidateGrid::explicit(
        vec![0.05, 0.2],
        vec![Resolution::square(320)],
        vec![vec![]],
    );
    let (profile, _) = system.generate_profile(&grid, None).unwrap();
    let json = profile.to_json().unwrap();
    let back = smokescreen::core::Profile::from_json(&json).unwrap();
    assert_eq!(profile, back);
}
