//! Chaos suite: deterministic fault injection across the
//! model/cache/generation stack.
//!
//! The contract under test, over a matrix of (fault rate × thread count ×
//! corpus):
//!
//! 1. **Inertness** — with faults disabled (no plan, or a zero-rate
//!    plan), the chaos machinery is byte-invisible: profiles and reports
//!    are identical to the fault-free path, which is itself pinned to the
//!    fig4/fig6 golden snapshots by `tests/golden_outputs.rs`.
//! 2. **Replayability** — the same seed and the same `FaultPlan` produce
//!    byte-identical profiles, fault accounting, and quarantine lists at
//!    1, 2, and 8 worker threads.
//! 3. **Soundness of survivors** — bounds computed over fault-surviving
//!    samples stay valid; that half lives in `tests/bound_validity.rs`
//!    (`bounds_*_under_injected_faults`) at 5% and 20% fault rates.
//!
//! Replay recipe: `SMOKESCREEN_FAULT_SEED` / `SMOKESCREEN_FAULT_RATE`
//! configure the env-driven run below (see EXPERIMENTS.md "chaos
//! matrix"); any chaos failure replays exactly from those two values plus
//! the generator seed.

use smokescreen::core::{
    Aggregate, GenerationReport, GeneratorConfig, Profile, ProfileGenerator, Workload,
};
use smokescreen::degrade::{CandidateGrid, RestrictionIndex};
use smokescreen::models::{Detector, SimMaskRcnn, SimYoloV4};
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::{ObjectClass, Resolution};
use smokescreen_rt::fault::{FaultPlan, FAULT_RATE_ENV};

struct Fixture {
    corpus: smokescreen::video::VideoCorpus,
    detector: Box<dyn Detector>,
    grid: CandidateGrid,
}

fn fixture(dataset: DatasetPreset) -> Fixture {
    let corpus = dataset.generate(23).slice(0, 1_500);
    let (detector, resolutions): (Box<dyn Detector>, Vec<Resolution>) = match dataset {
        // Mask R-CNN accepts multiples of 64, YOLO multiples of 32.
        DatasetPreset::NightStreet => (
            Box::new(SimMaskRcnn::new(23)),
            vec![Resolution::square(256), Resolution::square(512)],
        ),
        DatasetPreset::Detrac => (
            Box::new(SimYoloV4::new(23)),
            vec![Resolution::square(320), Resolution::square(608)],
        ),
    };
    let grid = CandidateGrid::explicit(
        vec![0.02, 0.05, 0.1, 0.2],
        resolutions,
        vec![vec![], vec![ObjectClass::Person]],
    );
    Fixture {
        corpus,
        detector,
        grid,
    }
}

fn generate(
    fx: &Fixture,
    threads: usize,
    faults: Option<FaultPlan>,
) -> (Profile, GenerationReport) {
    let workload = Workload {
        corpus: &fx.corpus,
        detector: fx.detector.as_ref(),
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
    };
    let restrictions = RestrictionIndex::from_ground_truth(&fx.corpus, &[ObjectClass::Person]);
    ProfileGenerator::new(
        &workload,
        &restrictions,
        GeneratorConfig {
            seed: 7,
            threads,
            faults,
            ..GeneratorConfig::default()
        },
    )
    .generate(&fx.grid, None)
    .unwrap()
}

/// Deterministic (schedule-independent) slice of a report: everything
/// except the measured wall-clock estimation timings.
fn chaos_fields(r: &GenerationReport) -> (usize, usize, f64, usize, usize, f64, usize, Vec<String>) {
    (
        r.model_runs,
        r.cache_hits,
        r.model_time_ms,
        r.retries,
        r.faults_injected,
        r.fault_time_ms,
        r.frames_lost,
        r.degraded_cells.clone(),
    )
}

#[test]
fn disabled_faults_are_byte_invisible() {
    for dataset in [DatasetPreset::NightStreet, DatasetPreset::Detrac] {
        let fx = fixture(dataset);
        let (reference, ref_report) = generate(&fx, 1, None);
        let reference_bytes = reference.to_json().unwrap();
        assert!(!reference.is_empty());
        // A zero-rate plan arms the whole fault-aware path (fault-capable
        // cache, fallible fetches, breaker checks) yet must change
        // nothing, at any thread count.
        for threads in [1usize, 8] {
            let (profile, report) = generate(&fx, threads, Some(FaultPlan::new(99, 0.0)));
            assert_eq!(
                profile.to_json().unwrap(),
                reference_bytes,
                "{dataset:?}: zero-rate plan must be byte-invisible at {threads} threads"
            );
            assert_eq!(chaos_fields(&report), chaos_fields(&ref_report), "{dataset:?}");
            assert_eq!(report.faults_injected, 0);
            assert_eq!(report.frames_lost, 0);
            assert!(report.degraded_cells.is_empty());
        }
    }
}

#[test]
fn chaos_matrix_replays_byte_identically() {
    // The core matrix: (corpus × fault rate × thread count). Same seed +
    // same FaultPlan ⇒ byte-identical profile and fault accounting,
    // regardless of scheduling.
    for dataset in [DatasetPreset::NightStreet, DatasetPreset::Detrac] {
        let fx = fixture(dataset);
        for rate in [0.05, 0.2] {
            let plan = FaultPlan::new(0xfa_17, rate);
            let (reference, ref_report) = generate(&fx, 1, Some(plan));
            let reference_bytes = reference.to_json().unwrap();
            assert!(
                ref_report.faults_injected > 0,
                "{dataset:?} rate {rate}: plan must fire"
            );
            assert!(ref_report.frames_lost > 0, "{dataset:?} rate {rate}");

            // Replay on the same thread count: bit-for-bit.
            let (replay, replay_report) = generate(&fx, 1, Some(plan));
            assert_eq!(replay.to_json().unwrap(), reference_bytes);
            assert_eq!(chaos_fields(&replay_report), chaos_fields(&ref_report));

            // Scheduling independence: 2 and 8 workers.
            for threads in [2usize, 8] {
                let (profile, report) = generate(&fx, threads, Some(plan));
                assert_eq!(
                    profile.to_json().unwrap(),
                    reference_bytes,
                    "{dataset:?} rate {rate}: profile diverged at {threads} threads"
                );
                assert_eq!(
                    chaos_fields(&report),
                    chaos_fields(&ref_report),
                    "{dataset:?} rate {rate}: fault accounting diverged at {threads} threads"
                );
            }

            // A different plan seed schedules a different chaos run — the
            // replay guarantee is per-plan, not an accidental constant.
            let (_, other_report) = generate(&fx, 1, Some(FaultPlan::new(0xd1ff, rate)));
            assert_ne!(
                chaos_fields(&other_report),
                chaos_fields(&ref_report),
                "{dataset:?} rate {rate}: distinct plan seeds must differ"
            );
        }
    }
}

#[test]
fn survivors_never_outnumber_requests_and_losses_reconcile() {
    // Degradation bookkeeping across the matrix: every emitted point
    // estimates from no more frames than the fault-free twin, and cells
    // either survive (points emitted) or quarantine (reported) — no
    // third, silent outcome.
    let fx = fixture(DatasetPreset::Detrac);
    let (clean, _) = generate(&fx, 8, None);
    for rate in [0.05, 0.2] {
        let (chaotic, report) = generate(&fx, 8, Some(FaultPlan::new(0xfa_17, rate)));
        let quarantined = report.degraded_cells.len();
        assert!(
            !chaotic.is_empty() || quarantined > 0,
            "rate {rate}: everything vanished without a quarantine report"
        );
        // Points pair with their clean twins by intervention set; a
        // missing pair must be explained by a quarantined cell.
        let mut unmatched = 0usize;
        for c in &clean.points {
            match chaotic.points.iter().find(|p| p.set == c.set) {
                Some(p) => assert!(
                    p.n <= c.n,
                    "rate {rate}: survivors {} exceed requested {}",
                    p.n,
                    c.n
                ),
                None => unmatched += 1,
            }
        }
        if quarantined == 0 {
            assert_eq!(unmatched, 0, "rate {rate}: points lost without quarantine");
        }
    }
}

#[test]
fn env_configured_chaos_run_is_deterministic() {
    // The CI entry point: ci.sh runs this suite with
    // SMOKESCREEN_FAULT_RATE ∈ {0, 0.05} (seed via
    // SMOKESCREEN_FAULT_SEED). When the variable is set, honor it exactly
    // — including rate 0 meaning faults disabled; when absent (a bare
    // `cargo test`), fall back to a fixed 5% plan so the path is always
    // exercised.
    let plan = if std::env::var_os(FAULT_RATE_ENV).is_some() {
        FaultPlan::from_env()
    } else {
        Some(FaultPlan::new(42, 0.05))
    };
    let fx = fixture(DatasetPreset::Detrac);
    let (p1, r1) = generate(&fx, 1, plan);
    let (p8, r8) = generate(&fx, 8, plan);
    assert_eq!(p1.to_json().unwrap(), p8.to_json().unwrap());
    assert_eq!(chaos_fields(&r1), chaos_fields(&r8));
    match plan {
        Some(p) if p.total_rate() > 0.0 => {
            assert!(r1.faults_injected > 0, "armed plan must fire")
        }
        _ => assert_eq!(r1.faults_injected, 0, "disabled faults must be silent"),
    }
}
