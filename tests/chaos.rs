//! Chaos suite: deterministic fault injection across the
//! model/cache/generation stack.
//!
//! The contract under test, over a matrix of (fault rate × thread count ×
//! corpus):
//!
//! 1. **Inertness** — with faults disabled (no plan, or a zero-rate
//!    plan), the chaos machinery is byte-invisible: profiles and reports
//!    are identical to the fault-free path, which is itself pinned to the
//!    fig4/fig6 golden snapshots by `tests/golden_outputs.rs`.
//! 2. **Replayability** — the same seed and the same `FaultPlan` produce
//!    byte-identical profiles, fault accounting, and quarantine lists at
//!    1, 2, and 8 worker threads.
//! 3. **Soundness of survivors** — bounds computed over fault-surviving
//!    samples stay valid; that half lives in `tests/bound_validity.rs`
//!    (`bounds_*_under_injected_faults`) at 5% and 20% fault rates.
//!
//! Replay recipe: `SMOKESCREEN_FAULT_SEED` / `SMOKESCREEN_FAULT_RATE`
//! configure the env-driven run below (see EXPERIMENTS.md "chaos
//! matrix"); any chaos failure replays exactly from those two values plus
//! the generator seed.

use smokescreen::core::{
    Aggregate, GenerationReport, GeneratorConfig, Profile, ProfileGenerator, Workload,
};
use smokescreen::degrade::{CandidateGrid, RestrictionIndex};
use smokescreen::models::{Detector, SimMaskRcnn, SimYoloV4};
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::{ObjectClass, Resolution};
use smokescreen_rt::fault::{FaultPlan, FAULT_RATE_ENV};

struct Fixture {
    corpus: smokescreen::video::VideoCorpus,
    detector: Box<dyn Detector>,
    grid: CandidateGrid,
}

fn fixture(dataset: DatasetPreset) -> Fixture {
    let corpus = dataset.generate(23).slice(0, 1_500);
    let (detector, resolutions): (Box<dyn Detector>, Vec<Resolution>) = match dataset {
        // Mask R-CNN accepts multiples of 64, YOLO multiples of 32.
        DatasetPreset::NightStreet => (
            Box::new(SimMaskRcnn::new(23)),
            vec![Resolution::square(256), Resolution::square(512)],
        ),
        DatasetPreset::Detrac => (
            Box::new(SimYoloV4::new(23)),
            vec![Resolution::square(320), Resolution::square(608)],
        ),
    };
    let grid = CandidateGrid::explicit(
        vec![0.02, 0.05, 0.1, 0.2],
        resolutions,
        vec![vec![], vec![ObjectClass::Person]],
    );
    Fixture {
        corpus,
        detector,
        grid,
    }
}

fn generate(
    fx: &Fixture,
    threads: usize,
    faults: Option<FaultPlan>,
) -> (Profile, GenerationReport) {
    let workload = Workload {
        corpus: &fx.corpus,
        detector: fx.detector.as_ref(),
        class: ObjectClass::Car,
        aggregate: Aggregate::Avg,
        delta: 0.05,
    };
    let restrictions = RestrictionIndex::from_ground_truth(&fx.corpus, &[ObjectClass::Person]);
    ProfileGenerator::new(
        &workload,
        &restrictions,
        GeneratorConfig {
            seed: 7,
            threads,
            faults,
            ..GeneratorConfig::default()
        },
    )
    .generate(&fx.grid, None)
    .unwrap()
}

/// Deterministic (schedule-independent) slice of a report: everything
/// except the measured wall-clock estimation timings.
fn chaos_fields(r: &GenerationReport) -> (usize, usize, f64, usize, usize, f64, usize, Vec<String>) {
    (
        r.model_runs,
        r.cache_hits,
        r.model_time_ms,
        r.retries,
        r.faults_injected,
        r.fault_time_ms,
        r.frames_lost,
        r.degraded_cells.clone(),
    )
}

#[test]
fn disabled_faults_are_byte_invisible() {
    for dataset in [DatasetPreset::NightStreet, DatasetPreset::Detrac] {
        let fx = fixture(dataset);
        let (reference, ref_report) = generate(&fx, 1, None);
        let reference_bytes = reference.to_json().unwrap();
        assert!(!reference.is_empty());
        // A zero-rate plan arms the whole fault-aware path (fault-capable
        // cache, fallible fetches, breaker checks) yet must change
        // nothing, at any thread count.
        for threads in [1usize, 8, 16] {
            let (profile, report) = generate(&fx, threads, Some(FaultPlan::new(99, 0.0)));
            assert_eq!(
                profile.to_json().unwrap(),
                reference_bytes,
                "{dataset:?}: zero-rate plan must be byte-invisible at {threads} threads"
            );
            assert_eq!(chaos_fields(&report), chaos_fields(&ref_report), "{dataset:?}");
            assert_eq!(report.faults_injected, 0);
            assert_eq!(report.frames_lost, 0);
            assert!(report.degraded_cells.is_empty());
        }
    }
}

#[test]
fn chaos_matrix_replays_byte_identically() {
    // The core matrix: (corpus × fault rate × thread count). Same seed +
    // same FaultPlan ⇒ byte-identical profile and fault accounting,
    // regardless of scheduling.
    for dataset in [DatasetPreset::NightStreet, DatasetPreset::Detrac] {
        let fx = fixture(dataset);
        for rate in [0.05, 0.2] {
            let plan = FaultPlan::new(0xfa_17, rate);
            let (reference, ref_report) = generate(&fx, 1, Some(plan));
            let reference_bytes = reference.to_json().unwrap();
            assert!(
                ref_report.faults_injected > 0,
                "{dataset:?} rate {rate}: plan must fire"
            );
            assert!(ref_report.frames_lost > 0, "{dataset:?} rate {rate}");

            // Replay on the same thread count: bit-for-bit.
            let (replay, replay_report) = generate(&fx, 1, Some(plan));
            assert_eq!(replay.to_json().unwrap(), reference_bytes);
            assert_eq!(chaos_fields(&replay_report), chaos_fields(&ref_report));

            // Scheduling independence: 2, 8, and 16 workers.
            for threads in [2usize, 8, 16] {
                let (profile, report) = generate(&fx, threads, Some(plan));
                assert_eq!(
                    profile.to_json().unwrap(),
                    reference_bytes,
                    "{dataset:?} rate {rate}: profile diverged at {threads} threads"
                );
                assert_eq!(
                    chaos_fields(&report),
                    chaos_fields(&ref_report),
                    "{dataset:?} rate {rate}: fault accounting diverged at {threads} threads"
                );
            }

            // A different plan seed schedules a different chaos run — the
            // replay guarantee is per-plan, not an accidental constant.
            let (_, other_report) = generate(&fx, 1, Some(FaultPlan::new(0xd1ff, rate)));
            assert_ne!(
                chaos_fields(&other_report),
                chaos_fields(&ref_report),
                "{dataset:?} rate {rate}: distinct plan seeds must differ"
            );
        }
    }
}

#[test]
fn batched_slice_ingestion_splits_survivor_gaps_correctly() {
    // Ingestion is now batched per ladder rung: each rung's survivors
    // arrive as one slice through `AggregateKernel::extend`. Faulted
    // frames leave gaps inside a rung, so the slice must contain exactly
    // that rung's survivors — the batched kernel state has to match a
    // per-element twin (one fetch per sample position) bit-for-bit, and
    // both have to match the batch estimator over the survivor list.
    use smokescreen::core::{estimate_from_outputs, AggregateKernel};
    use smokescreen::degrade::{DegradedView, InterventionSet};
    use smokescreen::models::{OutputCache, RetryPolicy};

    let fx = fixture(DatasetPreset::Detrac);
    let restrictions = RestrictionIndex::from_ground_truth(&fx.corpus, &[ObjectClass::Person]);
    let view = DegradedView::new(&fx.corpus, InterventionSet::sampling(0.4), &restrictions, 7)
        .expect("valid view");
    let population = fx.corpus.len();
    for rate in [0.0, 0.05] {
        let plan = FaultPlan::new(0xfa_17, rate);
        for agg in [
            Aggregate::Avg,
            Aggregate::Max { r: 0.99 },
            Aggregate::Quantile { r: 0.5 },
        ] {
            // Two caches with the same plan: fault outcomes are keyed on
            // the call, not on cache history, so the slice-fetching and
            // element-fetching twins see identical losses.
            let slice_cache =
                OutputCache::with_faults(fx.detector.as_ref(), plan, RetryPolicy::default());
            let elem_cache =
                OutputCache::with_faults(fx.detector.as_ref(), plan, RetryPolicy::default());
            let mut sliced = AggregateKernel::new(agg);
            let mut pushed = AggregateKernel::new(agg);
            let mut survivors = Vec::new();
            let mut lost = 0usize;
            let rungs = [0usize, 41, 160, 161, 400, view.len()];
            for w in rungs.windows(2) {
                let part =
                    view.try_outputs_cached_range(&slice_cache, ObjectClass::Car, w[0]..w[1]);
                sliced.extend(&part.values);
                lost += part.lost;
                for i in w[0]..w[1] {
                    let one =
                        view.try_outputs_cached_range(&elem_cache, ObjectClass::Car, i..i + 1);
                    for &v in &one.values {
                        pushed.push(v);
                    }
                    survivors.extend(one.values);
                }
                assert_eq!(
                    sliced.n(),
                    survivors.len(),
                    "rate {rate} {}: rung {}..{} slice must hold exactly the survivors",
                    agg.name(),
                    w[0],
                    w[1]
                );
                if survivors.is_empty() {
                    continue;
                }
                let batched = sliced.estimate(population, 0.05).unwrap();
                assert_eq!(
                    batched,
                    pushed.estimate(population, 0.05).unwrap(),
                    "rate {rate} {}: slice and element paths diverged at {}..{}",
                    agg.name(),
                    w[0],
                    w[1]
                );
                assert_eq!(
                    batched,
                    estimate_from_outputs(agg, &survivors, population, 0.05).unwrap(),
                    "rate {rate} {}: batched kernel diverged from batch estimator",
                    agg.name()
                );
            }
            if rate > 0.0 {
                assert!(lost > 0, "a {rate} plan must lose frames over 600 fetches");
            } else {
                assert_eq!(lost, 0, "zero-rate plan must lose nothing");
            }
        }
    }
}

#[test]
fn chaos_slice_path_replays_for_order_aggregates_across_threads() {
    // Generation-level twin of the test above: MAX profiles (OrderKernel
    // merge ingest) under fault rate {0, 0.05} must stay byte-identical
    // at 1/2/8 workers.
    let fx = fixture(DatasetPreset::Detrac);
    let restrictions = RestrictionIndex::from_ground_truth(&fx.corpus, &[ObjectClass::Person]);
    let workload = Workload {
        corpus: &fx.corpus,
        detector: fx.detector.as_ref(),
        class: ObjectClass::Car,
        aggregate: Aggregate::Max { r: 0.99 },
        delta: 0.05,
    };
    let run = |threads: usize, faults: Option<FaultPlan>| {
        ProfileGenerator::new(
            &workload,
            &restrictions,
            GeneratorConfig {
                seed: 7,
                threads,
                faults,
                ..GeneratorConfig::default()
            },
        )
        .generate(&fx.grid, None)
        .unwrap()
    };
    for rate in [0.0, 0.05] {
        let plan = FaultPlan::new(0xfa_17, rate);
        let (reference, ref_report) = run(1, Some(plan));
        let reference_bytes = reference.to_json().unwrap();
        assert!(!reference.is_empty(), "rate {rate}");
        if rate > 0.0 {
            assert!(ref_report.frames_lost > 0, "rate {rate}: plan must fire");
        }
        for threads in [2usize, 8, 16] {
            let (profile, report) = run(threads, Some(plan));
            assert_eq!(
                profile.to_json().unwrap(),
                reference_bytes,
                "rate {rate}: MAX profile diverged at {threads} threads"
            );
            assert_eq!(
                chaos_fields(&report),
                chaos_fields(&ref_report),
                "rate {rate}: fault accounting diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn survivors_never_outnumber_requests_and_losses_reconcile() {
    // Degradation bookkeeping across the matrix: every emitted point
    // estimates from no more frames than the fault-free twin, and cells
    // either survive (points emitted) or quarantine (reported) — no
    // third, silent outcome.
    let fx = fixture(DatasetPreset::Detrac);
    let (clean, _) = generate(&fx, 8, None);
    for rate in [0.05, 0.2] {
        let (chaotic, report) = generate(&fx, 8, Some(FaultPlan::new(0xfa_17, rate)));
        let quarantined = report.degraded_cells.len();
        assert!(
            !chaotic.is_empty() || quarantined > 0,
            "rate {rate}: everything vanished without a quarantine report"
        );
        // Points pair with their clean twins by intervention set; a
        // missing pair must be explained by a quarantined cell.
        let mut unmatched = 0usize;
        for c in &clean.points {
            match chaotic.points.iter().find(|p| p.set == c.set) {
                Some(p) => assert!(
                    p.n <= c.n,
                    "rate {rate}: survivors {} exceed requested {}",
                    p.n,
                    c.n
                ),
                None => unmatched += 1,
            }
        }
        if quarantined == 0 {
            assert_eq!(unmatched, 0, "rate {rate}: points lost without quarantine");
        }
    }
}

#[test]
fn env_configured_chaos_run_is_deterministic() {
    // The CI entry point: ci.sh runs this suite with
    // SMOKESCREEN_FAULT_RATE ∈ {0, 0.05} (seed via
    // SMOKESCREEN_FAULT_SEED). When the variable is set, honor it exactly
    // — including rate 0 meaning faults disabled; when absent (a bare
    // `cargo test`), fall back to a fixed 5% plan so the path is always
    // exercised.
    let plan = if std::env::var_os(FAULT_RATE_ENV).is_some() {
        FaultPlan::from_env()
    } else {
        Some(FaultPlan::new(42, 0.05))
    };
    let fx = fixture(DatasetPreset::Detrac);
    let (p1, r1) = generate(&fx, 1, plan);
    let (p8, r8) = generate(&fx, 8, plan);
    assert_eq!(p1.to_json().unwrap(), p8.to_json().unwrap());
    assert_eq!(chaos_fields(&r1), chaos_fields(&r8));
    match plan {
        Some(p) if p.total_rate() > 0.0 => {
            assert!(r1.faults_injected > 0, "armed plan must fire")
        }
        _ => assert_eq!(r1.faults_injected, 0, "disabled faults must be silent"),
    }
}
