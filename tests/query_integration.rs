//! Integration tests of the query surface against the full stack.

use smokescreen::query::{parse_query, QueryEngine, QueryError};
use smokescreen::video::synth::DatasetPreset;

fn engine() -> QueryEngine {
    let mut e = QueryEngine::new(3, 17);
    e.register("nightstreet", DatasetPreset::NightStreet.generate(11).slice(0, 4_000));
    e.register("detrac", DatasetPreset::Detrac.generate(11).slice(0, 4_000));
    e
}

#[test]
fn oracle_answers_match_ground_truth_stats() {
    let e = engine();
    let truth = DatasetPreset::Detrac
        .generate(11)
        .slice(0, 4_000)
        .stats()
        .mean_cars_per_frame;
    let out = e.run("SELECT AVG(car) FROM detrac USING oracle").unwrap();
    assert!(
        (out.y_approx - truth).abs() / truth < 0.01,
        "oracle full scan should be near-exact: {} vs {truth}",
        out.y_approx
    );
    assert!(out.err_b < 0.02);
}

#[test]
fn answers_carry_valid_bounds_against_oracle_truth() {
    let e = engine();
    let truth = e.run("SELECT AVG(car) FROM detrac USING oracle").unwrap();
    let sampled = e
        .run("SELECT AVG(car) FROM detrac SAMPLE 0.2 USING oracle")
        .unwrap();
    let realized = (sampled.y_approx - truth.y_approx).abs() / truth.y_approx;
    assert!(
        realized <= sampled.err_b + 0.02,
        "realized {realized} vs bound {}",
        sampled.err_b
    );
}

#[test]
fn every_aggregate_executes_on_both_corpora() {
    let e = engine();
    for corpus in ["nightstreet", "detrac"] {
        for agg in [
            "AVG(car)",
            "SUM(car)",
            "COUNT(car >= 1)",
            "MAX(car)",
            "MIN(car)",
            "VAR(car)",
        ] {
            let sql = format!("SELECT {agg} FROM {corpus} SAMPLE 0.1");
            let out = e.run(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            assert!(out.y_approx.is_finite(), "{sql}");
            assert!(out.err_b >= 0.0, "{sql}");
        }
    }
}

#[test]
fn degradation_clauses_flow_through_to_execution() {
    let e = engine();
    // Smaller resolution ⇒ fewer cars found (systematic undercount).
    let hi = e
        .run("SELECT SUM(car) FROM detrac SAMPLE 0.5 RESOLUTION 608x608")
        .unwrap();
    let lo = e
        .run("SELECT SUM(car) FROM detrac SAMPLE 0.5 RESOLUTION 96x96")
        .unwrap();
    assert!(lo.y_approx < hi.y_approx, "lo={} hi={}", lo.y_approx, hi.y_approx);
    assert!(lo.non_random_warning && hi.non_random_warning);
}

#[test]
fn parser_and_engine_errors_are_well_typed() {
    let e = engine();
    assert!(matches!(
        e.run("SELECT AVG(car) FROM missing"),
        Err(QueryError::UnknownCorpus(_))
    ));
    assert!(matches!(
        e.run("SELECT AVG(car) FROM detrac USING gpt"),
        Err(QueryError::UnknownModel(_))
    ));
    assert!(matches!(parse_query("garbage"), Err(QueryError::Parse(_))));
    assert!(matches!(
        parse_query("SELECT AVG(car) FROM v @"),
        Err(QueryError::Lex { .. })
    ));
}

#[test]
fn confidence_clause_tightens_or_loosens_bounds() {
    let e = engine();
    let loose = e
        .run("SELECT AVG(car) FROM detrac SAMPLE 0.05 CONFIDENCE 0.8")
        .unwrap();
    let tight = e
        .run("SELECT AVG(car) FROM detrac SAMPLE 0.05 CONFIDENCE 0.99")
        .unwrap();
    assert!(
        loose.err_b < tight.err_b,
        "higher confidence must widen the bound: {} vs {}",
        loose.err_b,
        tight.err_b
    );
}
