//! Reproducibility guarantees: everything keyed by a seed must replay
//! identically, and model outputs must not depend on processing order —
//! the property that makes the §3.3.2 reuse cache sound.

use smokescreen::core::{Aggregate, GeneratorConfig, Smokescreen};
use smokescreen::degrade::{CandidateGrid, DegradedView, InterventionSet, RestrictionIndex};
use smokescreen::models::{Detector, SimMaskRcnn, SimYoloV4};
use smokescreen::query::QueryEngine;
use smokescreen::video::synth::DatasetPreset;
use smokescreen::video::{ObjectClass, Resolution};

#[test]
fn corpora_replay_identically_per_seed() {
    let a = DatasetPreset::NightStreet.generate(9);
    let b = DatasetPreset::NightStreet.generate(9);
    assert_eq!(a.frames(), b.frames());
    let c = DatasetPreset::NightStreet.generate(10);
    assert_ne!(a.frames(), c.frames());
}

#[test]
fn detector_outputs_do_not_depend_on_visit_order() {
    let corpus = DatasetPreset::Detrac.generate(4).slice(0, 300);
    let yolo = SimYoloV4::new(4);
    let res = Resolution::square(320);

    // Forward pass.
    let forward: Vec<_> = corpus
        .frames()
        .iter()
        .map(|f| yolo.detect(f, res))
        .collect();
    // Reverse pass must produce identical per-frame outputs.
    let mut reverse: Vec<_> = corpus
        .frames()
        .iter()
        .rev()
        .map(|f| yolo.detect(f, res))
        .collect();
    reverse.reverse();
    assert_eq!(forward, reverse);
}

#[test]
fn degraded_views_replay_per_seed() {
    let corpus = DatasetPreset::NightStreet.generate(5).slice(0, 1_000);
    let idx = RestrictionIndex::from_ground_truth(&corpus, &[ObjectClass::Person]);
    let set = InterventionSet::sampling(0.2).with_restricted(&[ObjectClass::Person]);
    let a = DegradedView::new(&corpus, set.clone(), &idx, 3).unwrap();
    let b = DegradedView::new(&corpus, set.clone(), &idx, 3).unwrap();
    assert_eq!(a.sampled_indices(), b.sampled_indices());
    let c = DegradedView::new(&corpus, set, &idx, 4).unwrap();
    assert_ne!(a.sampled_indices(), c.sampled_indices());
}

#[test]
fn profiles_replay_per_config() {
    let corpus = DatasetPreset::Detrac.generate(6).slice(0, 1_500);
    let mask = SimMaskRcnn::new(6);
    let system = Smokescreen::new(&corpus, &mask, ObjectClass::Car, Aggregate::Avg, 0.05)
        .with_config(GeneratorConfig {
            seed: 11,
            ..GeneratorConfig::default()
        });
    let grid = CandidateGrid::explicit(
        vec![0.05, 0.15],
        vec![Resolution::square(256), Resolution::square(640)],
        vec![vec![]],
    );
    let (p1, _) = system.generate_profile(&grid, None).unwrap();
    let (p2, _) = system.generate_profile(&grid, None).unwrap();
    assert_eq!(p1, p2);
}

#[test]
fn query_engine_is_referentially_transparent() {
    let mut engine = QueryEngine::new(2, 13);
    engine.register("v", DatasetPreset::NightStreet.generate(7).slice(0, 2_000));
    let q = "SELECT COUNT(car >= 1) FROM v SAMPLE 0.1";
    assert_eq!(engine.run(q).unwrap(), engine.run(q).unwrap());
}
