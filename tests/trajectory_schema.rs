//! Golden test pinning the `BENCH_*.json` trajectory schema.
//!
//! A smoke trajectory run is reduced to its structural schema
//! (`trajectory::schema_of`: field names and types, no values) and
//! compared against `tests/golden/trajectory_schema.json`. Any field
//! added, removed, renamed, or retyped in the trajectory format shows up
//! here — and in ci.sh, which validates the `trajectory --smoke` output
//! against the same golden. To bless an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test trajectory_schema
//! ```
//!
//! bump `trajectory::SCHEMA`, and commit the regenerated golden.

use std::fs;
use std::path::PathBuf;

use smokescreen_bench::trajectory::{schema_of, BenchResult, Derived, Trajectory, SCHEMA};
use smokescreen_rt::json::{Json, ToJson};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trajectory_schema.json")
}

/// A synthetic trajectory with every field populated. The schema golden
/// pins the *shape*, so representative values suffice — no benches run.
fn representative_trajectory() -> Trajectory {
    let bench = |name: &str| BenchResult {
        name: name.into(),
        reps: 2,
        median_wall_ms: 1.0,
        p95_wall_ms: 1.5,
        min_wall_ms: 0.5,
        throughput_per_s: 1_000.0,
        throughput_unit: "points".into(),
        model_runs: 10,
        alloc_count: 3,
        alloc_bytes: 96,
    };
    Trajectory {
        schema: SCHEMA.into(),
        pr: 8,
        git_rev: "0123456789ab".into(),
        threads: 4,
        corpus: "ua-detrac-sim".into(),
        corpus_frames: 1_200,
        smoke: true,
        benches: vec![bench("generation_end_to_end")],
        derived: Derived {
            parallel_speedup_4w: 3.0,
            parallel_speedup_8w: 6.0,
            parallel_speedup_16w: 11.0,
            ingest_speedup_avg: 2.0,
            ingest_speedup_max: 8.0,
            ingest_speedup_median: 7.0,
            sweep_speedup_max: 4.0,
        },
    }
}

#[test]
fn trajectory_schema_matches_golden() {
    let schema = schema_of(&representative_trajectory().to_json());
    let encoded = schema.encode_pretty();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &encoded).unwrap();
        println!("blessed {}", path.display());
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun UPDATE_GOLDEN=1 cargo test --test trajectory_schema to create it",
            path.display()
        )
    });
    assert_eq!(
        Json::parse(&golden).expect("golden parses"),
        schema,
        "trajectory schema drifted from {} — if intentional, regen with \
         UPDATE_GOLDEN=1 and bump trajectory::SCHEMA",
        path.display()
    );
    // The golden is stored exactly as the deterministic pretty encoding,
    // so `trajectory run --schema-golden` can diff values byte-wise too.
    assert_eq!(golden, encoded, "golden file is not the canonical encoding");
}

#[test]
fn schema_is_value_independent() {
    // Two trajectories with different values (and bench counts) reduce to
    // the same schema — the golden gates shape only.
    let a = representative_trajectory();
    let mut b = representative_trajectory();
    b.pr = 99;
    b.smoke = false;
    b.benches.push(b.benches[0].clone());
    b.benches[1].name = "ingest_slice_max".into();
    b.benches[1].median_wall_ms = 123.456;
    assert_eq!(schema_of(&a.to_json()), schema_of(&b.to_json()));
}
