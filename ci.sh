#!/usr/bin/env bash
# Hermetic CI entry point.
#
# The workspace carries ZERO crates.io dependencies — every runtime
# service (PRNG + distributions, JSON, locks, property testing, bench
# timing) lives in-tree in crates/rt. CI therefore builds fully offline:
# no registry, no network, no lockfile drift. If either command below
# fails with a "no matching package" error, someone reintroduced an
# external dependency; see README.md "Hermetic builds".
#
# The suite runs twice — pinned to 1 worker and to 8 workers — because
# parallel profile generation (rt::pool) promises bit-for-bit identical
# output at any thread count. A final cross-check regenerates the fig4
# CSVs at both worker counts and fails on any byte difference.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline --workspace

echo "=== test suite @ SMOKESCREEN_THREADS=1 ==="
SMOKESCREEN_THREADS=1 cargo test -q --offline --workspace
echo "=== test suite @ SMOKESCREEN_THREADS=8 ==="
SMOKESCREEN_THREADS=8 cargo test -q --offline --workspace

echo "=== estimator kernels: batch vs incremental sweep ==="
# Smoke-runs the incremental-kernel bench: asserts the ≥3× estimation
# speedup on quantile-heavy sweeps and that the kernel path is
# bit-identical to the batch reference.
cargo test -q --offline -p smokescreen-bench --bench estimator_kernels

echo "=== determinism cross-check: fig4 CSVs @ 1 vs 8 workers ==="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./target/release/repro fig4 --quick --threads 1 --out "$tmpdir/t1" >/dev/null
./target/release/repro fig4 --quick --threads 8 --out "$tmpdir/t8" >/dev/null
diff -r "$tmpdir/t1" "$tmpdir/t8"
echo "fig4 output identical across worker counts"

echo "=== golden re-diff: fig4 CSVs vs committed snapshots ==="
# The incremental estimator kernels promise byte-identical profiles;
# regenerate fig4 at the pinned golden configuration (seed 42, quick) and
# diff against the committed goldens directly.
./target/release/repro fig4 --quick --seed 42 --threads 8 --out "$tmpdir/golden" >/dev/null
for f in tests/golden/fig4_*.csv; do
  diff "$f" "$tmpdir/golden/$(basename "$f")"
done
echo "fig4 output identical to committed goldens"
