#!/usr/bin/env bash
# Hermetic CI entry point.
#
# The workspace carries ZERO crates.io dependencies — every runtime
# service (PRNG + distributions, JSON, locks, property testing, bench
# timing) lives in-tree in crates/rt. CI therefore builds fully offline:
# no registry, no network, no lockfile drift. If either command below
# fails with a "no matching package" error, someone reintroduced an
# external dependency; see README.md "Hermetic builds".
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline --workspace
cargo test -q --offline --workspace
