#!/usr/bin/env bash
# Hermetic CI entry point.
#
# The workspace carries ZERO crates.io dependencies — every runtime
# service (PRNG + distributions, JSON, locks, property testing, bench
# timing) lives in-tree in crates/rt. CI therefore builds fully offline:
# no registry, no network, no lockfile drift. If either command below
# fails with a "no matching package" error, someone reintroduced an
# external dependency; see README.md "Hermetic builds".
#
# The suite runs twice — pinned to 1 worker and to 8 workers — because
# parallel profile generation (rt::pool) promises bit-for-bit identical
# output at any thread count. A final cross-check regenerates the fig4
# CSVs at 1, 8, and 16 workers and fails on any byte difference.
#
# The chaos suite then re-runs the generation stack under deterministic
# fault injection (seeded FaultPlan via SMOKESCREEN_FAULT_SEED /
# SMOKESCREEN_FAULT_RATE) at rates 0 and 0.05 × 1 and 8 workers: rate 0
# proves the fault machinery is byte-invisible, rate 0.05 proves chaos
# runs replay bit-for-bit across schedules. The crash-resume matrix does
# the same for process deaths: a seeded CrashPlan kills generation at
# deterministic journal commits and the resumed profiles must byte-equal
# their pinned goldens at every kill point × thread count × fault rate.
# The golden re-diff at the bottom runs with faults disabled and the
# checkpoint directory explicitly unset, pinning the fault-free,
# checkpoint-free fig4 CSVs to the committed snapshots.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline --workspace

echo "=== test suite @ SMOKESCREEN_THREADS=1 ==="
SMOKESCREEN_THREADS=1 cargo test -q --offline --workspace
echo "=== test suite @ SMOKESCREEN_THREADS=8 ==="
SMOKESCREEN_THREADS=8 cargo test -q --offline --workspace

echo "=== chaos suite: fault rates {0, 0.05} x threads {1, 8, 16} ==="
# Deterministic fault injection: rate 0 must be byte-invisible; rate 0.05
# must injure model calls yet replay byte-identically at any worker
# count — including 16 workers on the persistent pool, where helpers
# outnumber cores and every job runs on warm threads. The bound-validity
# chaos tests (5% and 20% rates) already ran in the workspace suites
# above.
for rate in 0 0.05; do
  for threads in 1 8 16; do
    echo "--- chaos @ rate=$rate threads=$threads ---"
    SMOKESCREEN_FAULT_SEED=42 SMOKESCREEN_FAULT_RATE=$rate \
      SMOKESCREEN_THREADS=$threads \
      cargo test -q --offline --test chaos
  done
done

echo "=== crash-resume matrix: kill points {1, 3} x threads {1, 8, 16} x fault rates {0, 0.05} ==="
# Crash-consistent checkpointing: a seeded CrashPlan kills generation at
# deterministic journal commits (seed 1 tears a record mid-append, seed 3
# dies after three separate durable appends); the suite reruns until the
# profile completes and asserts the resumed bytes equal the uninterrupted
# run — which itself is pinned to tests/golden/crash_resume_rate*.json.
# Every combination below must land on the same two goldens: the profile
# may not depend on the kill point, the thread count, or how many times
# the process died on the way.
for crash_seed in 1 3; do
  for threads in 1 8 16; do
    for rate in 0 0.05; do
      echo "--- crash-resume @ seed=$crash_seed threads=$threads fault_rate=$rate ---"
      SMOKESCREEN_CRASH_SEED=$crash_seed SMOKESCREEN_CRASH_RATE=0.5 \
        SMOKESCREEN_FAULT_SEED=42 SMOKESCREEN_FAULT_RATE=$rate \
        SMOKESCREEN_THREADS=$threads \
        cargo test -q --offline --test crash_resume
    done
  done
done

echo "=== estimator kernels: batch vs incremental sweep ==="
# Smoke-runs the incremental-kernel bench: asserts the ≥3× estimation
# speedup on quantile-heavy sweeps and that the kernel path is
# bit-identical to the batch reference.
cargo test -q --offline -p smokescreen-bench --bench estimator_kernels

echo "=== perf trajectory: smoke run + schema gate + regression exit code ==="
# The trajectory harness smoke-runs the full bench suite on a tiny corpus
# (2 reps) and validates the emitted BENCH_*.json against the structural
# schema golden — a malformed or missing field fails the build here and
# in tests/trajectory_schema.rs. The harness itself is then proven to
# gate: `check` against a synthetically 10×-faster prior must exit
# non-zero, and a self-check must exit zero. Reps/threshold are
# overridable via SMOKESCREEN_BENCH_REPS / SMOKESCREEN_BENCH_THRESHOLD
# (see EXPERIMENTS.md).
trajdir="$(mktemp -d)"
trap 'rm -rf "$trajdir"' EXIT
./target/release/trajectory run --smoke --reps 2 --pr 6 --out "$trajdir" \
  --schema-golden tests/golden/trajectory_schema.json
./target/release/trajectory check \
  --prev "$trajdir/BENCH_6.json" --cur "$trajdir/BENCH_6.json" >/dev/null
# Doctor a prior whose medians are all near-zero; the gate must trip.
sed -E 's/"median_wall_ms": [0-9.eE+-]+/"median_wall_ms": 0.000001/; s/"pr": 6/"pr": 5/' \
  "$trajdir/BENCH_6.json" > "$trajdir/BENCH_5.json"
if ./target/release/trajectory check \
  --prev "$trajdir/BENCH_5.json" --cur "$trajdir/BENCH_6.json" >/dev/null 2>&1; then
  echo "trajectory check FAILED to flag a synthetic regression" >&2
  exit 1
fi
echo "trajectory smoke + schema + regression gate ok"

echo "=== perf trajectory: committed BENCH files stay comparable ==="
# The committed PR-10 trajectory must still pass the threshold gate
# against the committed PR-9 baseline. New bench families (the serve_*
# throughput rows) are reported but never gated, so this proves the
# pre-existing numbers carry no regression past the default threshold.
./target/release/trajectory check \
  --prev bench_results/BENCH_9.json --cur bench_results/BENCH_10.json >/dev/null
echo "BENCH_9 -> BENCH_10 trajectory gate ok"

echo "=== serving daemon: framed load at two rates + zero-quarantine reopen gate ==="
# Boots the profile-serving daemon as a real separate process, drives it
# with the seeded load generator at two concurrency levels (a put-heavy
# seeding wave, then a read-heavy mixed wave that also requests graceful
# shutdown), and then audits the store cold: `serve check` exits non-zero
# if recovery quarantined even one record — the ack-is-durability gate.
# The wire-protocol shape itself is pinned by
# tests/golden/serve_protocol_schema.json, and determinism across worker
# counts by tests/serve_soak.rs in the workspace suites above.
servestore="$trajdir/serve-store"
servesock="$trajdir/serve.sock"
./target/release/serve run --unix "$servesock" --store "$servestore" --threads 4 &
serve_pid=$!
for _ in $(seq 1 200); do [ -S "$servesock" ] && break; sleep 0.05; done
[ -S "$servesock" ] || { echo "serve daemon never bound $servesock" >&2; exit 1; }
./target/release/serve_load --addr "unix:$servesock" \
  --requests 600 --clients 2 --mix put --seed 42
./target/release/serve_load --addr "unix:$servesock" \
  --requests 600 --clients 8 --mix mixed --seed 43 --shutdown
wait "$serve_pid"
./target/release/serve check --store "$servestore"
./target/release/serve check --store "$servestore" --scrub
echo "serving slice ok: 1200 framed requests at 2 rates, clean shutdown, zero quarantined"

echo "=== chaos serving: supervised daemon under seeded disk+net faults ==="
# The daemon runs with armed fault plans (seeded, replayable: every
# injected failure is a pure function of (seed, rid/op)) and an induced
# generation-1 crash after 150 answered requests. The retry client rides
# through all of it — idempotent puts keyed on expected_seq, hedged
# gets, reconnects across the supervisor restart — and must finish with
# zero unexpected errors. `serve check --scrub` then proves the store
# lost no acked write: scrub passes drain whatever the chaos
# quarantined, and any unrepaired record fails the build.
chaosstore="$trajdir/chaos-store"
chaossock="$trajdir/chaos.sock"
SMOKESCREEN_DISKFAULT_SEED=53596 SMOKESCREEN_DISKFAULT_RATE=0.08 \
  SMOKESCREEN_NETFAULT_SEED=1255 SMOKESCREEN_NETFAULT_RATE=0.10 \
  ./target/release/serve run --unix "$chaossock" --store "$chaosstore" \
  --threads 2 --scrub-batch 16 --supervise --crash-after 150 &
chaos_pid=$!
for _ in $(seq 1 200); do [ -S "$chaossock" ] && break; sleep 0.05; done
[ -S "$chaossock" ] || { echo "chaos daemon never bound $chaossock" >&2; exit 1; }
./target/release/serve_load --addr "unix:$chaossock" \
  --requests 400 --clients 4 --mix mixed --seed 44 --retry
./target/release/serve_load --addr "unix:$chaossock" \
  --requests 200 --clients 2 --mix mixed --seed 45 --retry --shutdown
wait "$chaos_pid"
./target/release/serve check --store "$chaosstore" --scrub
echo "chaos serving slice ok: crash + faults survived, zero unrepaired records"

echo "=== serving inertness: zero-rate armed plans vs none -> identical store bytes ==="
# Armed-but-zero-rate disk/net fault plans must be byte-invisible: the
# same seeded load against a plan-free daemon and a zero-rate-armed
# daemon must compact to identical store bytes — the serving-layer
# analogue of the perturbation-inertness gate below.
for mode in off zero; do
  inertstore="$trajdir/inert-$mode"
  inertsock="$trajdir/inert-$mode.sock"
  if [ "$mode" = zero ]; then
    SMOKESCREEN_DISKFAULT_SEED=53596 SMOKESCREEN_DISKFAULT_RATE=0 \
      SMOKESCREEN_NETFAULT_SEED=1255 SMOKESCREEN_NETFAULT_RATE=0 \
      ./target/release/serve run --unix "$inertsock" --store "$inertstore" --threads 4 &
  else
    ./target/release/serve run --unix "$inertsock" --store "$inertstore" --threads 4 &
  fi
  inert_pid=$!
  for _ in $(seq 1 200); do [ -S "$inertsock" ] && break; sleep 0.05; done
  [ -S "$inertsock" ] || { echo "inert daemon never bound $inertsock" >&2; exit 1; }
  ./target/release/serve_load --addr "unix:$inertsock" \
    --requests 300 --clients 4 --mix mixed --seed 46 --shutdown
  wait "$inert_pid"
done
diff "$trajdir/inert-off/profiles.data" "$trajdir/inert-zero/profiles.data"
diff "$trajdir/inert-off/profiles.idx" "$trajdir/inert-zero/profiles.idx"
echo "zero-rate fault plans are byte-invisible to the store"

echo "=== content-fault robustness: smoke audit matrix + schema gate ==="
# One kind (glare) × one rate × both corpora, 12 trials/cell: the
# bound-soundness invariants (δ=1e-6 sweep never violated, nominal
# coverage vs the perturbed truth, zero drift false positives) must hold
# on every commit, and the emitted ROBUST_*.json must match the
# structural schema golden. The full matrix lives in
# bench_results/ROBUST_7.json (see EXPERIMENTS.md to regenerate).
./target/release/robust run --smoke --pr 7 --out "$trajdir" \
  --schema-golden tests/golden/content_shift_schema.json
echo "robust smoke audit ok"

echo "=== determinism cross-check: fig4 CSVs @ 1 vs 8 vs 16 workers ==="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir" "$trajdir"' EXIT
./target/release/repro fig4 --quick --threads 1 --out "$tmpdir/t1" >/dev/null
./target/release/repro fig4 --quick --threads 8 --out "$tmpdir/t8" >/dev/null
./target/release/repro fig4 --quick --threads 16 --out "$tmpdir/t16" >/dev/null
diff -r "$tmpdir/t1" "$tmpdir/t8"
diff -r "$tmpdir/t1" "$tmpdir/t16"
echo "fig4 output identical across worker counts"

echo "=== golden re-diff: fig4 CSVs vs committed snapshots (faults disabled) ==="
# The incremental estimator kernels promise byte-identical profiles;
# regenerate fig4 at the pinned golden configuration (seed 42, quick,
# faults explicitly disabled) and diff against the committed goldens
# directly — the chaos machinery must leave the fault-free path
# untouched. SMOKESCREEN_CHECKPOINT_DIR is explicitly unset: with no
# checkpoint directory the journaling machinery must be byte-invisible,
# so this diff doubles as the checkpoint-inertness proof.
env -u SMOKESCREEN_CHECKPOINT_DIR SMOKESCREEN_FAULT_RATE=0 \
  ./target/release/repro fig4 --quick --seed 42 --threads 8 --out "$tmpdir/golden" >/dev/null
for f in tests/golden/fig4_*.csv; do
  diff "$f" "$tmpdir/golden/$(basename "$f")"
done
echo "fig4 output identical to committed goldens"

echo "=== perturbation inertness: zero-rate plan vs committed fig4 goldens ==="
# An armed-but-zero-rate content-fault plan (SMOKESCREEN_PERTURB_RATE=0
# with a seed and kind set) routes every experiment fixture through
# PerturbPlan::apply, which must return the corpus unchanged — the same
# inertness contract the chaos knobs honor above. Any byte drift against
# the committed fig4 goldens means the perturbation stack leaks into the
# clean path.
env -u SMOKESCREEN_CHECKPOINT_DIR SMOKESCREEN_FAULT_RATE=0 \
  SMOKESCREEN_PERTURB_SEED=7 SMOKESCREEN_PERTURB_RATE=0 SMOKESCREEN_PERTURB_KIND=glare \
  ./target/release/repro fig4 fig6 --quick --seed 42 --threads 8 --out "$tmpdir/perturb0" >/dev/null
for f in tests/golden/fig4_*.csv tests/golden/fig6_*.csv; do
  diff "$f" "$tmpdir/perturb0/$(basename "$f")"
done
# The crash-resume goldens must survive an armed zero-rate plan too.
SMOKESCREEN_PERTURB_SEED=7 SMOKESCREEN_PERTURB_RATE=0 SMOKESCREEN_PERTURB_KIND=glare \
  cargo test -q --offline --test crash_resume
echo "zero-rate perturbation plan is byte-invisible"
